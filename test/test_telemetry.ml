(* The telemetry registry and trace ring, plus the no-drift contract:
   the process-wide registry must agree with the legacy per-module
   accessors it mirrors, because both are bumped on the same line. *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

(* Every test that reads absolute registry values resets first: the
   registry is process-wide and the suite shares one process. *)

(* --- registry semantics --- *)

let test_counter_identity () =
  Telemetry.reset ();
  let a = Telemetry.counter "t_requests" ~labels:[ ("sw", "1"); ("dir", "in") ] in
  (* same name, same labels in a different order: the same cell *)
  let b = Telemetry.counter "t_requests" ~labels:[ ("dir", "in"); ("sw", "1") ] in
  Telemetry.incr a;
  Telemetry.add b 2;
  check Alcotest.int "one shared cell" 3 (Telemetry.value a);
  (* different labels: a distinct cell *)
  let c = Telemetry.counter "t_requests" ~labels:[ ("sw", "2"); ("dir", "in") ] in
  check Alcotest.int "distinct label set" 0 (Telemetry.value c)

let test_kind_mismatch_raises () =
  Telemetry.reset ();
  ignore (Telemetry.counter "t_kind_clash");
  check Alcotest.bool "gauge under a counter name raises" true
    (try
       ignore (Telemetry.gauge "t_kind_clash");
       false
     with Invalid_argument _ -> true)

let test_snapshot_deterministic () =
  Telemetry.reset ();
  (* register in scrambled order; snapshots must sort by (name, labels)
     and two identical histories must render byte-identically *)
  (* reset keeps registrations, so earlier tests' "t_" cells survive:
     use a prefix unique to this test *)
  ignore (Telemetry.counter "td_zz");
  ignore (Telemetry.counter "td_aa" ~labels:[ ("k", "2") ]);
  ignore (Telemetry.counter "td_aa" ~labels:[ ("k", "1") ]);
  ignore (Telemetry.gauge "td_mm");
  let names =
    List.map
      (fun (s : Telemetry.sample) -> (s.Telemetry.name, s.Telemetry.labels))
      (List.filter
         (fun (s : Telemetry.sample) ->
           String.length s.Telemetry.name > 3 && String.sub s.Telemetry.name 0 3 = "td_")
         (Telemetry.snapshot ()))
  in
  check Alcotest.bool "sorted by (name, labels)" true
    (names
    = [
        ("td_aa", [ ("k", "1") ]);
        ("td_aa", [ ("k", "2") ]);
        ("td_mm", []);
        ("td_zz", []);
      ]);
  let r1 = Format.asprintf "%a" Telemetry.pp_text (Telemetry.snapshot ()) in
  let r2 = Format.asprintf "%a" Telemetry.pp_text (Telemetry.snapshot ()) in
  check Alcotest.bool "text render is stable" true (r1 = r2)

let test_histogram_bucketing () =
  Telemetry.reset ();
  let hst = Telemetry.histogram "t_lat" ~buckets:[| 0.001; 0.01; 0.1 |] in
  List.iter (Telemetry.observe hst) [ 0.0005; 0.001; 0.002; 0.05; 99. ];
  check Alcotest.int "count" 5 (Telemetry.histogram_count hst);
  check (Alcotest.float 1e-9) "sum" 99.0535 (Telemetry.histogram_sum hst);
  match Telemetry.find (Telemetry.snapshot ()) "t_lat" with
  | Some (Telemetry.Histogram { buckets; count; _ }) ->
      check Alcotest.int "snapshot count" 5 count;
      (* cumulative: <=0.001 holds 2 (bound is inclusive), <=0.01 adds
         0.002, <=0.1 adds 0.05, +inf catches 99 *)
      check Alcotest.bool "cumulative bucket counts" true
        (List.map snd buckets = [ 2; 3; 4; 5 ]);
      check Alcotest.bool "last bound is +inf" true
        (List.nth buckets 3 |> fst |> Float.is_integer |> not
        || fst (List.nth buckets 3) = infinity)
  | _ -> Alcotest.fail "histogram sample missing"

let test_histogram_bad_buckets () =
  Telemetry.reset ();
  check Alcotest.bool "unsorted bounds raise" true
    (try
       ignore (Telemetry.histogram "t_bad" ~buckets:[| 2.0; 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_reset_zeroes_but_keeps_registration () =
  Telemetry.reset ();
  let c = Telemetry.counter "t_reset_me" in
  let g = Telemetry.gauge "t_reset_g" in
  Telemetry.add c 7;
  Telemetry.set g 3.5;
  Telemetry.reset ();
  check Alcotest.int "counter zeroed" 0 (Telemetry.value c);
  check (Alcotest.float 0.) "gauge zeroed" 0. (Telemetry.gauge_value g);
  (* the handle survives and keeps pointing at the registered cell *)
  Telemetry.incr c;
  check Alcotest.int "handle still live after reset" 1
    (Telemetry.counter_total (Telemetry.snapshot ()) "t_reset_me")

let test_json_shape () =
  Telemetry.reset ();
  let c = Telemetry.counter "t_json" ~labels:[ ("a", "b\"c") ] in
  Telemetry.add c 5;
  ignore (Telemetry.histogram "t_json_h" ~buckets:[| 1.0 |]);
  let j = Telemetry.to_json (Telemetry.snapshot ()) in
  let contains needle =
    let n = String.length needle and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "schema header" true
    (String.length j > 40 && String.sub j 0 33 = {|{"schema":"difane-metrics-v1","me|});
  check Alcotest.bool "escaped label value" true (contains {|"a":"b\"c"|});
  check Alcotest.bool "counter sample" true
    (contains {|{"name":"t_json","labels":{"a":"b\"c"},"type":"counter","value":5}|});
  check Alcotest.bool "+inf bound stringified" true (contains {|"le":"+inf"|});
  check Alcotest.bool "document closes" true (String.sub j (String.length j - 2) 2 = "]}")

(* nan has no JSON spelling: a renderer printing it raw (e.g. a fresh
   TCAM's hit_rate before any lookup) produces an unparseable document.
   Every float escape hatch must map it to null. *)
let test_json_nan_safety () =
  check Alcotest.string "nan -> null" "null" (Telemetry.json_float Float.nan);
  check Alcotest.string "+inf -> string" {|"+inf"|} (Telemetry.json_float infinity);
  check Alcotest.string "-inf -> string" {|"-inf"|} (Telemetry.json_float neg_infinity);
  check Alcotest.string "finite untouched" "0.5" (Telemetry.json_float 0.5);
  check Alcotest.string "fresh hit_rate renders null" "null"
    (Telemetry.json_float (Tcam.hit_rate (Tcam.create ~capacity:4)));
  Telemetry.reset ();
  let g = Telemetry.gauge "t_undefined_gauge" in
  Telemetry.set g Float.nan;
  let j = Telemetry.to_json (Telemetry.snapshot ()) in
  let contains needle =
    let n = String.length needle and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "nan gauge -> null in --metrics json" true
    (contains {|{"name":"t_undefined_gauge","type":"gauge","value":null}|});
  check Alcotest.bool "no bare nan token" false (contains "nan")

(* --- trace ring --- *)

let test_trace_wraparound () =
  Telemetry.reset ();
  Telemetry.Trace.enable ~capacity:4 ();
  for i = 1 to 7 do
    Telemetry.Trace.event ~at:(float_of_int i) ~name:"tick" (string_of_int i)
  done;
  check Alcotest.int "emitted counts overwrites" 7 (Telemetry.Trace.emitted ());
  let evs = Telemetry.Trace.events () in
  check Alcotest.int "ring keeps capacity" 4 (List.length evs);
  check Alcotest.bool "newest survive, oldest first" true
    (List.map (fun (e : Telemetry.Trace.event) -> e.Telemetry.Trace.at) evs
    = [ 4.; 5.; 6.; 7. ]);
  Telemetry.Trace.disable ();
  Telemetry.Trace.event ~at:99. ~name:"tick" "ignored";
  check Alcotest.int "disabled emit is a no-op" 7 (Telemetry.Trace.emitted ())

let test_trace_deep_wraparound () =
  (* many times around the ring: the newest [capacity] survive, in
     order, and the emitted total keeps counting the overwritten ones *)
  Telemetry.reset ();
  Telemetry.Trace.enable ~capacity:16 ();
  let total = 1000 in
  for i = 1 to total do
    if i mod 3 = 0 then
      Telemetry.Trace.span ~at:(float_of_int i) ~dur:0.5 ~name:"span" (string_of_int i)
    else Telemetry.Trace.event ~at:(float_of_int i) ~name:"tick" (string_of_int i)
  done;
  check Alcotest.int "emitted counts all" total (Telemetry.Trace.emitted ());
  let evs = Telemetry.Trace.events () in
  check Alcotest.int "ring holds capacity" 16 (List.length evs);
  check Alcotest.bool "exactly the newest, oldest first" true
    (List.map (fun (e : Telemetry.Trace.event) -> e.Telemetry.Trace.at) evs
    = List.init 16 (fun i -> float_of_int (total - 15 + i)));
  (* span metadata survives the wraparound *)
  check Alcotest.bool "spans keep their duration" true
    (List.for_all
       (fun (e : Telemetry.Trace.event) ->
         if e.Telemetry.Trace.name = "span" then e.Telemetry.Trace.dur = 0.5
         else e.Telemetry.Trace.dur = 0.)
       evs);
  Telemetry.Trace.clear ();
  check Alcotest.int "clear resets emitted" 0 (Telemetry.Trace.emitted ());
  check Alcotest.int "clear empties the ring" 0 (List.length (Telemetry.Trace.events ()));
  Telemetry.Trace.disable ()

let test_trace_disabled_by_default () =
  (* fresh state after reset: tracing must be opt-in *)
  Telemetry.reset ();
  check Alcotest.bool "off by default" false (Telemetry.Trace.enabled ())

(* --- integration: registry vs the legacy accessors it mirrors --- *)

let sim_policy =
  Classifier.of_specs s2
    [ (1, [ ("f1", "0xxxxxxx") ], Action.Forward 2); (0, [], Action.Drop) ]

let test_flowsim_agrees_with_registry () =
  Telemetry.reset ();
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with cache_capacity = 64; k = 4 }
      ~policy:sim_policy ~topology:(Topology.line 4 ()) ~authority_ids:[ 1 ] ()
  in
  let rng = Prng.create 7 in
  let flows =
    List.init 500 (fun i ->
        {
          Traffic.flow_id = i;
          header = h (Prng.int rng 256) (Prng.int rng 256);
          ingress = 0;
          start = float_of_int i *. 1e-4;
          packets = 2;
          interval = 1e-4;
        })
  in
  let r = Flowsim.run_difane d flows in
  let snap = Telemetry.snapshot () in
  let total name = Telemetry.counter_total snap name in
  check Alcotest.int "delivered packets" r.Flowsim.delivered_packets
    (total "sim_packets_delivered");
  check Alcotest.int "cache hits" r.Flowsim.cache_hit_packets (total "sim_cache_hit_packets");
  check Alcotest.int "completed flows" r.Flowsim.completed_flows (total "sim_flows_completed");
  check Alcotest.int "dropped flows" r.Flowsim.dropped_flows (total "sim_flows_dropped");
  (* per-switch labelled counters sum to the per-object stats *)
  let switches = Deployment.switches d in
  let sum f =
    Array.fold_left (fun acc sw -> Int64.add acc (f (Switch.stats sw))) 0L switches
    |> Int64.to_int
  in
  check Alcotest.int "switch cache hits" (sum (fun s -> s.Switch.cache_hits))
    (total "switch_cache_hits");
  check Alcotest.int "switch authority hits" (sum (fun s -> s.Switch.authority_hits))
    (total "switch_authority_hits");
  check Alcotest.int "switch tunnelled" (sum (fun s -> s.Switch.tunnelled))
    (total "switch_tunnelled");
  (* TCAM totals across all cache banks *)
  let tcam f =
    Array.fold_left
      (fun acc sw ->
        let s = Tcam.stats (Switch.cache sw) in
        Int64.add acc (f s))
      0L switches
    |> Int64.to_int
  in
  check Alcotest.int "tcam hits" (tcam (fun s -> s.Tcam.hits)) (total "tcam_hits");
  check Alcotest.int "tcam misses" (tcam (fun s -> s.Tcam.misses)) (total "tcam_misses");
  check Alcotest.int "tcam inserts" (tcam (fun s -> s.Tcam.inserts)) (total "tcam_inserts");
  (* the authority_stat record is consistent with itself *)
  List.iter
    (fun (a : Flowsim.authority_stat) ->
      check Alcotest.bool "authority stat sane" true
        (a.Flowsim.misses_served >= 0 && a.Flowsim.misses_rejected >= 0))
    r.Flowsim.authority_stats;
  (* the first-packet-delay histogram saw every completed flow *)
  match Telemetry.find snap "sim_first_packet_delay" with
  | Some (Telemetry.Histogram { count; _ }) ->
      check Alcotest.int "histogram count = completions" r.Flowsim.completed_flows count
  | _ -> Alcotest.fail "first-packet histogram missing"

let test_lossy_push_agrees_with_registry () =
  Telemetry.reset ();
  let d =
    Deployment.build ~install:false
      ~config:{ Deployment.default_config with replication = 2; k = 4 }
      ~policy:sim_policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  let faults = Fault.plan ~seed:11 ~link:(Fault.lossy_link ~jitter:2e-3 0.25) () in
  let cp =
    Control_plane.create
      ~config:{ Control_plane.default_config with retx_timeout = 0.02 }
      ~faults d
  in
  Control_plane.push_deployment cp ~now:0.;
  let t = ref 0.005 in
  while !t <= 3. do
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.005
  done;
  let s = Control_plane.stats cp in
  let snap = Telemetry.snapshot () in
  let total name = Telemetry.counter_total snap name in
  check Alcotest.bool "channel really was lossy" true (s.Control_plane.dropped > 0);
  check Alcotest.int "dropped" s.Control_plane.dropped (total "channel_dropped");
  check Alcotest.int "duplicated" s.Control_plane.duplicated (total "channel_duplicated");
  check Alcotest.int "corrupted" s.Control_plane.corrupted (total "channel_corrupted");
  check Alcotest.int "decode errors" s.Control_plane.decode_errors
    (total "channel_decode_errors");
  check Alcotest.int "link dropped" s.Control_plane.link_dropped (total "ctrl_link_dropped");
  check Alcotest.int "retransmissions" (Control_plane.retransmissions cp)
    (total "ctrl_retransmissions");
  check Alcotest.int "giveups" (Control_plane.giveups cp) (total "ctrl_giveups");
  check Alcotest.int "frames" (Control_plane.control_frames cp) (total "channel_frames");
  check Alcotest.int "bytes" (Control_plane.control_bytes cp) (total "channel_bytes");
  (* reset_stats clears the per-object view without touching the registry *)
  Control_plane.reset_stats cp;
  let s' = Control_plane.stats cp in
  check Alcotest.int "per-object stats cleared" 0
    (s'.Control_plane.dropped + s'.Control_plane.link_dropped);
  check Alcotest.int "registry unaffected by per-object reset"
    s.Control_plane.dropped (total "channel_dropped")

let test_rebalance_counters_shape () =
  Telemetry.reset ();
  let policy =
    Policy_gen.acl (Prng.create 21) { Policy_gen.default_acl with rules = 120; chains = 20 }
  in
  let d =
    Deployment.build
      ~config:
        { Deployment.default_config with k = 4; replication = 2; cache_capacity = 0 }
      ~policy ~topology:(Topology.star 6 ()) ~authority_ids:[ 1; 2; 3 ] ()
  in
  let cp =
    Control_plane.create
      ~config:
        {
          Control_plane.default_config with
          retx_timeout = 0.05;
          rebalance_interval = Some 0.1;
          adaptive = true;
          hotspot_threshold = 1.5;
          hotspot_window = 2;
          migration_step = 0.05;
        }
      d
  in
  (* hammer one partition's region so the hotspot detector trips *)
  let hot = List.hd (Deployment.partitioner d).Partitioner.partitions in
  let headers = Traffic.headers_for (Prng.create 5) hot.Partitioner.table 64 in
  let i = ref 0 in
  let t = ref 0.02 in
  while !t <= 1.5 do
    for _ = 1 to 10 do
      ignore (Deployment.inject d ~now:!t ~ingress:4 headers.(!i mod Array.length headers));
      incr i
    done;
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.02
  done;
  check Alcotest.bool "a migration ran" true (Control_plane.migrations_started cp >= 1);
  let snap = Telemetry.snapshot () in
  let total name = Telemetry.counter_total snap name in
  check Alcotest.int "started mirrors registry" (Control_plane.migrations_started cp)
    (total "rebalance_migrations_started");
  check Alcotest.int "committed mirrors registry" (Control_plane.migrations_committed cp)
    (total "rebalance_migrations_committed");
  check Alcotest.int "aborted mirrors registry" (Control_plane.migrations_aborted cp)
    (total "rebalance_migrations_aborted");
  check Alcotest.int "rules moved mirrors registry" (Control_plane.rules_moved cp)
    (total "rebalance_rules_moved");
  check Alcotest.bool "rules actually moved" true (Control_plane.rules_moved cp > 0);
  (* every rebalance_* cell is registered and renders through the
     standard snapshot/JSON path *)
  List.iter
    (fun name ->
      match Telemetry.find snap name with
      | Some (Telemetry.Counter _) -> ()
      | _ -> Alcotest.failf "%s missing from the snapshot or not a counter" name)
    [
      "rebalance_migrations_started";
      "rebalance_migrations_committed";
      "rebalance_migrations_aborted";
      "rebalance_rules_moved";
      "rebalance_windows_to_recovery";
    ]

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "counter identity & labels" `Quick test_counter_identity;
        Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch_raises;
        Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
        Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
        Alcotest.test_case "histogram bad buckets" `Quick test_histogram_bad_buckets;
        Alcotest.test_case "reset zeroes, keeps registration" `Quick
          test_reset_zeroes_but_keeps_registration;
        Alcotest.test_case "json shape" `Quick test_json_shape;
        Alcotest.test_case "json nan safety" `Quick test_json_nan_safety;
        Alcotest.test_case "trace ring wraparound" `Quick test_trace_wraparound;
        Alcotest.test_case "trace ring deep wraparound" `Quick test_trace_deep_wraparound;
        Alcotest.test_case "trace disabled by default" `Quick test_trace_disabled_by_default;
      ] );
    ( "telemetry-integration",
      [
        Alcotest.test_case "flowsim registry = legacy counters" `Quick
          test_flowsim_agrees_with_registry;
        Alcotest.test_case "lossy push registry = legacy counters" `Quick
          test_lossy_push_agrees_with_registry;
        Alcotest.test_case "rebalance counters registry = legacy counters" `Quick
          test_rebalance_counters_shape;
      ] );
  ]

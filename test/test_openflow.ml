open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let message = Alcotest.testable Message.pp Message.equal

let roundtrip msg =
  let buf = Message.encode ~xid:42 ~epoch:3 msg in
  match Message.decode s2 buf with
  | Ok (xid, epoch, msg') ->
      check Alcotest.int "xid" 42 xid;
      check Alcotest.int "epoch" 3 epoch;
      check message "message" msg msg'
  | Error e -> Alcotest.failf "decode failed: %s" e

let sample_rule =
  Rule.make ~id:17 ~priority:9 (Pred.of_strings s2 [ ("f1", "01xx_xx10") ]) (Action.Forward 3)

let test_simple_roundtrips () =
  List.iter roundtrip
    [
      Message.Hello;
      Message.Echo_request 7;
      Message.Echo_reply 7;
      Message.Barrier_request 3;
      Message.Barrier_reply 3;
    ]

let test_flow_mod_roundtrip () =
  List.iter roundtrip
    [
      Message.Flow_mod
        { command = Message.Add; bank = Message.Cache; rule = sample_rule;
          idle_timeout = Some 10.; hard_timeout = None };
      Message.Flow_mod
        { command = Message.Delete_strict; bank = Message.Partition;
          rule = Rule.make ~id:1 ~priority:0 (Pred.any s2) (Action.To_authority 9);
          idle_timeout = None; hard_timeout = Some 0.5 };
    ]

let test_packet_roundtrips () =
  roundtrip (Message.Packet_in { ingress = 4; header = h 10 20; reason = `No_match });
  roundtrip (Message.Packet_out { out_switch = 2; out_header = h 1 2; action = Action.Drop })

let test_stats_roundtrips () =
  roundtrip (Message.Stats_request { table_bank = Message.Authority; cookie = 77 });
  roundtrip
    (Message.Stats_reply
       {
         request_cookie = 77;
         flows =
           [
             { Message.rule_id = 1; packets = 100L; bytes = 6400L; duration = 1.5 };
             { Message.rule_id = 2; packets = 0L; bytes = 0L; duration = 0. };
           ];
       })

let test_decode_garbage () =
  let bad b = match Message.decode s2 b with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "empty" true (bad (Bytes.create 0));
  check Alcotest.bool "short" true (bad (Bytes.create 3));
  let frame = Message.encode ~xid:1 Message.Hello in
  let truncated = Bytes.sub frame 0 (Bytes.length frame - 1) in
  check Alcotest.bool "truncated" true (bad truncated);
  let corrupt = Bytes.copy frame in
  Bytes.set_uint8 corrupt 0 99;
  check Alcotest.bool "bad version" true (bad corrupt);
  let extended = Bytes.cat frame (Bytes.make 4 '\x00') in
  check Alcotest.bool "trailing bytes" true (bad extended)

let test_wire_size () =
  let msg = Message.Packet_in { ingress = 4; header = h 10 20; reason = `No_match } in
  check Alcotest.int "size matches encode" (Bytes.length (Message.encode ~xid:0 msg))
    (Message.wire_size ~xid:0 msg);
  check Alcotest.bool "frames have 20-byte header" true (Message.wire_size ~xid:0 Message.Hello = 20)

let gen_message =
  let open QCheck2.Gen in
  let gen_rule =
    let* pd = gen_pred_tiny2 in
    let* pr = int_bound 100 in
    let* idr = int_bound 1000 in
    let* act = oneofl [ Action.Drop; Action.Forward 2; Action.To_authority 5 ] in
    return (Rule.make ~id:idr ~priority:pr pd act)
  in
  oneof
    [
      return Message.Hello;
      (int_bound 1000 >|= fun c -> Message.Echo_request c);
      (int_bound 1000 >|= fun c -> Message.Barrier_request c);
      ( pair gen_rule (oneofl [ Message.Cache; Message.Authority; Message.Partition ])
      >|= fun (r, bank) ->
        Message.Flow_mod
          { command = Message.Add; bank; rule = r; idle_timeout = Some 1.; hard_timeout = None } );
      (gen_header_tiny2 >|= fun hd -> Message.Packet_in { ingress = 1; header = hd; reason = `No_match });
    ]

let prop_roundtrip =
  qt "encode/decode roundtrip" gen_message (fun msg ->
      match Message.decode s2 (Message.encode ~xid:5 msg) with
      | Ok (5, 0, msg') -> Message.equal msg msg'
      | _ -> false)

let suite =
  [
    ( "openflow",
      [
        tc "simple roundtrips" test_simple_roundtrips;
        tc "flow-mod roundtrips" test_flow_mod_roundtrip;
        tc "packet in/out roundtrips" test_packet_roundtrips;
        tc "stats roundtrips" test_stats_roundtrips;
        tc "garbage rejection" test_decode_garbage;
        tc "wire size" test_wire_size;
        prop_roundtrip;
      ] );
  ]

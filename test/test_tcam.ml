open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let rule ?(priority = 1) id fields action =
  Rule.make ~id ~priority (Pred.of_strings s2 fields) action

let test_insert_lookup () =
  let t = Tcam.create ~capacity:4 in
  check Alcotest.bool "insert" true (Tcam.insert t ~now:0. (rule 1 [ ("f1", "0000_0001") ] (Action.Forward 1)) = `Ok);
  check Alcotest.int "occupancy" 1 (Tcam.occupancy t);
  check (Alcotest.option Alcotest.int) "hit" (Some 1)
    (Option.map (fun r -> r.Rule.id) (Tcam.lookup t ~now:1. (h 1 0)));
  check (Alcotest.option Alcotest.int) "miss" None
    (Option.map (fun r -> r.Rule.id) (Tcam.lookup t ~now:1. (h 2 0)))

let test_priority_order () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.insert t ~now:0. (rule ~priority:1 1 [] (Action.Forward 1)));
  ignore (Tcam.insert t ~now:0. (rule ~priority:9 2 [ ("f1", "0000_0001") ] Action.Drop));
  check (Alcotest.option Alcotest.int) "high priority first" (Some 2)
    (Option.map (fun r -> r.Rule.id) (Tcam.lookup t ~now:1. (h 1 0)))

let test_capacity () =
  let t = Tcam.create ~capacity:2 in
  ignore (Tcam.insert t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  ignore (Tcam.insert t ~now:0. (rule 2 [ ("f1", "0000_0010") ] Action.Drop));
  check Alcotest.bool "full" true (Tcam.is_full t);
  check Alcotest.bool "reject" true
    (Tcam.insert t ~now:0. (rule 3 [ ("f1", "0000_0011") ] Action.Drop) = `Full);
  (* replace existing id does not need space *)
  check Alcotest.bool "replace ok" true
    (match Tcam.insert t ~now:1. (rule 2 [ ("f1", "0000_0100") ] Action.Drop) with
    | `Replaced e -> e.Tcam.rule.Rule.id = 2
    | `Ok | `Full -> false);
  check Alcotest.int "still 2" 2 (Tcam.occupancy t)

let test_zero_capacity () =
  let t = Tcam.create ~capacity:0 in
  let r = rule 1 [] Action.Drop in
  check Alcotest.bool "always full" true (Tcam.insert t ~now:0. r = `Full);
  check (Alcotest.list Alcotest.int) "insert_or_evict bounces" [ 1 ]
    (List.map (fun (x : Rule.t) -> x.id) (Tcam.insert_or_evict t ~now:0. r))

let test_lru_eviction () =
  let t = Tcam.create ~capacity:2 in
  ignore (Tcam.insert t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  ignore (Tcam.insert t ~now:1. (rule 2 [ ("f1", "0000_0010") ] Action.Drop));
  (* touch rule 1 so rule 2 is LRU *)
  ignore (Tcam.lookup t ~now:5. (h 1 0));
  let evicted = Tcam.insert_or_evict t ~now:6. (rule 3 [ ("f1", "0000_0011") ] Action.Drop) in
  check (Alcotest.list Alcotest.int) "evicts LRU" [ 2 ]
    (List.map (fun (x : Rule.t) -> x.id) evicted);
  check Alcotest.bool "rule1 kept" true (Tcam.mem t 1);
  check Alcotest.bool "rule3 inserted" true (Tcam.mem t 3)

let test_idle_timeout () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.insert ~idle_timeout:5. t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  check (Alcotest.list Alcotest.int) "not yet" []
    (List.map (fun (x : Rule.t) -> x.id) (Tcam.expire t ~now:4.9));
  ignore (Tcam.lookup t ~now:4. (h 1 0));
  (* hit at t=4 resets idle clock *)
  check (Alcotest.list Alcotest.int) "hit postpones" []
    (List.map (fun (x : Rule.t) -> x.id) (Tcam.expire t ~now:8.9));
  check (Alcotest.list Alcotest.int) "expires" [ 1 ]
    (List.map (fun (x : Rule.t) -> x.id) (Tcam.expire t ~now:9.1));
  check Alcotest.int "gone" 0 (Tcam.occupancy t)

let test_hard_timeout () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.insert ~hard_timeout:5. t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  ignore (Tcam.lookup t ~now:4.9 (h 1 0));
  (* hits do not postpone hard timeouts *)
  check (Alcotest.list Alcotest.int) "hard expiry" [ 1 ]
    (List.map (fun (x : Rule.t) -> x.id) (Tcam.expire t ~now:5.0))

let test_counters () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.insert t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  ignore (Tcam.lookup t ~now:1. (h 1 0));
  ignore (Tcam.lookup t ~now:1. ~bytes:1500 (h 1 0));
  ignore (Tcam.lookup t ~now:1. (h 9 0));
  let e = Option.get (Tcam.find t 1) in
  check Alcotest.int64 "packets" 2L e.Tcam.packets;
  check Alcotest.int64 "bytes" 1564L e.Tcam.bytes;
  let s = Tcam.stats t in
  check Alcotest.int64 "hits" 2L s.Tcam.hits;
  check Alcotest.int64 "misses" 1L s.Tcam.misses;
  check (Alcotest.float 1e-9) "hit rate" (2. /. 3.) (Tcam.hit_rate t);
  (* peek must not disturb counters *)
  ignore (Tcam.peek t (h 1 0));
  check Alcotest.int64 "peek silent" 2L (Tcam.stats t).Tcam.hits

let test_remove_where () =
  let t = Tcam.create ~capacity:4 in
  ignore (Tcam.insert t ~now:0. (rule 1 [ ("f1", "0000_0001") ] Action.Drop));
  ignore (Tcam.insert t ~now:0. (rule 2 [ ("f1", "0000_0010") ] (Action.Forward 1)));
  ignore (Tcam.insert t ~now:0. (rule 3 [ ("f1", "0000_0011") ] Action.Drop));
  let n = Tcam.remove_where t (fun r -> Action.equal r.Rule.action Action.Drop) in
  check Alcotest.int "removed drops" 2 n;
  check Alcotest.int "left" 1 (Tcam.occupancy t)

(* --- properties --- *)

let prop_never_exceeds_capacity =
  qt "insert_or_evict never exceeds capacity"
    QCheck2.Gen.(list_size (int_bound 30) (pair gen_pred_tiny2 (int_bound 100)))
    (fun ops ->
      let t = Tcam.create ~capacity:5 in
      List.iteri
        (fun i (pd, pr) ->
          ignore
            (Tcam.insert_or_evict t ~now:(float_of_int i)
               (Rule.make ~id:i ~priority:pr pd Action.Drop)))
        ops;
      Tcam.occupancy t <= 5)

let prop_lookup_agrees_with_classifier =
  qt "lookup = classifier first-match on same rules"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (pair gen_pred_tiny2 (int_bound 10)))
        gen_header_tiny2)
    (fun (specs, pt) ->
      let rules =
        List.mapi (fun i (pd, pr) -> Rule.make ~id:i ~priority:pr pd Action.Drop) specs
      in
      let t = Tcam.create ~capacity:100 in
      List.iter (fun r -> ignore (Tcam.insert t ~now:0. r)) rules;
      let c = Classifier.create s2 rules in
      let a = Option.map (fun r -> r.Rule.id) (Tcam.lookup t ~now:1. pt) in
      let b = Option.map (fun r -> r.Rule.id) (Classifier.first_match c pt) in
      a = b)

let suite =
  [
    ( "tcam",
      [
        tc "insert and lookup" test_insert_lookup;
        tc "priority order" test_priority_order;
        tc "capacity limit and replace" test_capacity;
        tc "zero capacity" test_zero_capacity;
        tc "LRU eviction" test_lru_eviction;
        tc "idle timeout" test_idle_timeout;
        tc "hard timeout" test_hard_timeout;
        tc "counters and stats" test_counters;
        tc "remove_where" test_remove_where;
        prop_never_exceeds_capacity;
        prop_lookup_agrees_with_classifier;
      ] );
  ]

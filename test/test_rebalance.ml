(* Bounded partitioning and traffic-measured rebalancing (paper §5). *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy = Policy_gen.acl (Prng.create 8) { Policy_gen.default_acl with rules = 250 }

(* --- compute_bounded --- *)

let test_bounded_fits () =
  let budget = 40 in
  let r = Partitioner.compute_bounded policy ~max_entries:budget in
  List.iter
    (fun (p : Partitioner.partition) ->
      if Classifier.length p.table > budget then
        Alcotest.failf "partition %d has %d entries (budget %d)" p.pid
          (Classifier.length p.table) budget)
    r.Partitioner.partitions;
  check Alcotest.bool "uses several partitions" true
    (List.length r.Partitioner.partitions > 1)

let test_bounded_minimal_when_it_fits () =
  let r = Partitioner.compute_bounded policy ~max_entries:10_000 in
  check Alcotest.int "single partition suffices" 1 (List.length r.Partitioner.partitions)

let test_bounded_cap () =
  let r = Partitioner.compute_bounded ~max_partitions:4 policy ~max_entries:1 in
  check Alcotest.bool "capped" true (List.length r.Partitioner.partitions <= 4)

let test_bounded_invalid () =
  try
    ignore (Partitioner.compute_bounded policy ~max_entries:0);
    Alcotest.fail "max_entries=0 accepted"
  with Invalid_argument _ -> ()

let prop_bounded_still_covers =
  qt ~count:20 "bounded partitions still tile the flowspace"
    QCheck2.Gen.(int_range 5 60)
    (fun budget ->
      let small =
        Policy_gen.acl (Prng.create budget) { Policy_gen.default_acl with rules = 80 }
      in
      let r = Partitioner.compute_bounded small ~max_entries:budget in
      let region =
        Region.of_preds (Classifier.schema small)
          (List.map (fun (p : Partitioner.partition) -> p.region) r.Partitioner.partitions)
      in
      Region.equal_sets region (Region.full (Classifier.schema small)))

(* --- measured loads and rebalance --- *)

let tiny_policy =
  Classifier.of_specs s2
    [
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (10, [ ("f1", "1xxxxxxx") ], Action.Forward 3);
      (0, [], Action.Drop);
    ]

let build () =
  let config = { Deployment.default_config with k = 4; cache_capacity = 0 } in
  Deployment.build ~config ~policy:tiny_policy ~topology:(Topology.line 5 ())
    ~authority_ids:[ 1; 3 ] ()

let test_measured_loads () =
  let d = build () in
  (* hammer one corner of the flowspace: that partition gets the load *)
  for i = 0 to 99 do
    ignore (Deployment.inject d ~now:0. ~ingress:0 (h (i mod 16) (i mod 8)))
  done;
  let loads = Deployment.measured_partition_loads d in
  check Alcotest.int "every partition listed" 4 (List.length loads);
  let total = List.fold_left (fun acc (_, l) -> acc +. l) 0. loads in
  check (Alcotest.float 1e-9) "all misses measured" 100. total;
  let hottest = List.fold_left (fun acc (_, l) -> Float.max acc l) 0. loads in
  check Alcotest.bool "load is skewed" true (hottest >= 99.)

let test_rebalance_moves_hot_partition () =
  let d = build () in
  for i = 0 to 99 do
    ignore (Deployment.inject d ~now:0. ~ingress:0 (h (i mod 16) (i mod 8)))
  done;
  let loads = Deployment.measured_partition_loads d in
  let hot_pid, _ = List.fold_left (fun (bp, bl) (p, l) -> if l > bl then (p, l) else (bp, bl)) (-1, -1.) loads in
  let d' = Deployment.rebalance d ~loads in
  (* the hot partition must sit alone on its authority switch *)
  let host = Assignment.switch_for (Deployment.assignment d') hot_pid in
  check (Alcotest.list Alcotest.int) "hot partition isolated" [ hot_pid ]
    (Assignment.partitions_of (Deployment.assignment d') host);
  (* semantics survive the move *)
  let rng = Prng.create 3 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "still correct" true (Deployment.semantically_equal d' probes)

let test_rebalance_keeps_partitions () =
  let d = build () in
  let before = (Deployment.partitioner d).Partitioner.partitions in
  let d' = Deployment.rebalance d ~loads:(List.map (fun (p : Partitioner.partition) -> (p.pid, 1.)) before) in
  let after = (Deployment.partitioner d').Partitioner.partitions in
  check Alcotest.int "same partition count" (List.length before) (List.length after);
  List.iter2
    (fun (a : Partitioner.partition) (b : Partitioner.partition) ->
      check Alcotest.bool "same regions" true (Pred.equal a.region b.region))
    before after

(* --- split_region / refit (the adaptive re-cut path) --- *)

let k4 = Partitioner.compute policy ~k:4

let max_pid r =
  List.fold_left
    (fun acc (p : Partitioner.partition) -> max acc p.pid)
    min_int r.Partitioner.partitions

let test_split_region_fresh_disjoint_halves () =
  let src = List.hd k4.Partitioner.partitions in
  match Partitioner.split_region k4 policy ~pid:src.Partitioner.pid with
  | None -> Alcotest.fail "no productive cut in a 250-rule region"
  | Some ((lo_pid, lo), (hi_pid, hi)) ->
      let m = max_pid k4 in
      check Alcotest.int "lo pid fresh" (m + 1) lo_pid;
      check Alcotest.int "hi pid fresh" (m + 2) hi_pid;
      let schema = Classifier.schema policy in
      check Alcotest.bool "halves disjoint" true
        (Region.is_empty (Region.inter (Region.of_preds schema [ lo ])
                            (Region.of_preds schema [ hi ])));
      check Alcotest.bool "halves tile the source region" true
        (Region.equal_sets
           (Region.of_preds schema [ lo; hi ])
           (Region.of_preds schema [ src.Partitioner.region ]))

let test_split_region_unknown_pid () =
  check Alcotest.bool "unknown pid refused" true
    (Partitioner.split_region k4 policy ~pid:9999 = None)

let test_refit_reproduces_split_layout () =
  let src = List.hd k4.Partitioner.partitions in
  match Partitioner.split_region k4 policy ~pid:src.Partitioner.pid with
  | None -> Alcotest.fail "no productive cut"
  | Some ((lo_pid, lo), (hi_pid, hi)) ->
      let regions =
        (lo_pid, lo) :: (hi_pid, hi)
        :: List.filter_map
             (fun (p : Partitioner.partition) ->
               if p.pid = src.Partitioner.pid then None else Some (p.pid, p.region))
             k4.Partitioner.partitions
      in
      let r = Partitioner.refit k4 policy ~regions in
      check Alcotest.int "one more partition" (List.length k4.Partitioner.partitions + 1)
        (List.length r.Partitioner.partitions);
      let schema = Classifier.schema policy in
      check Alcotest.bool "refit still tiles the flowspace" true
        (Region.equal_sets
           (Region.of_preds schema
              (List.map (fun (p : Partitioner.partition) -> p.region)
                 r.Partitioner.partitions))
           (Region.full schema));
      (* region identity survives: refit must not re-run the decision tree *)
      List.iter
        (fun (pid, want) ->
          let got =
            List.find (fun (p : Partitioner.partition) -> p.pid = pid)
              r.Partitioner.partitions
          in
          check Alcotest.bool "region preserved verbatim" true
            (Pred.equal want got.Partitioner.region))
        regions

(* --- closed-loop adaptive migration, end to end --- *)

let acl_policy =
  Policy_gen.acl (Prng.create 21) { Policy_gen.default_acl with rules = 120; chains = 20 }

let adaptive_cp_config =
  {
    Control_plane.default_config with
    echo_interval = 0.2;
    retx_timeout = 0.05;
    retx_limit = 8;
    rebalance_interval = Some 0.1;
    adaptive = true;
    hotspot_threshold = 1.5;
    hotspot_window = 2;
    migration_step = 0.05;
  }

let adaptive_mk ?(migration_step = 0.05) ?(events = []) () =
  let faults = Fault.plan ~seed:11 ~controllers:3 ~events () in
  let config =
    {
      Cluster.default_config with
      snapshot_every = 1000;
      cp = { adaptive_cp_config with migration_step };
    }
  in
  Cluster.create ~config ~faults
    ~dconfig:
      { Deployment.default_config with k = 4; replication = 2; cache_capacity = 0 }
    ~policy:acl_policy ~topology:(Topology.star 6 ()) ~authority_ids:[ 1; 2; 3 ] ()

(* drive the cluster while hammering one partition's region: 10 misses
   per 20 ms tick, all inside the first partition — a persistent hotspot *)
let drive_hot ?(until = 1.5) cl =
  Cluster.push_deployment cl ~now:0.;
  let hot =
    List.hd (Deployment.partitioner (Cluster.deployment cl)).Partitioner.partitions
  in
  let headers = Traffic.headers_for (Prng.create 5) hot.Partitioner.table 64 in
  let i = ref 0 in
  let t = ref 0.02 in
  while !t <= until do
    let d = Cluster.deployment cl in
    for _ = 1 to 10 do
      ignore (Deployment.inject d ~now:!t ~ingress:4 headers.(!i mod Array.length headers));
      incr i
    done;
    Cluster.tick cl ~now:!t;
    t := !t +. 0.02
  done

let acl_probes =
  Array.to_list (Traffic.headers_for (Prng.create 3) acl_policy 200)

let journal_kinds cl =
  List.filter_map
    (fun (_, _, e) ->
      match e with
      | Journal.Migration_begin m -> Some (`Begin m.Journal.mid)
      | Journal.Migration_flip mid -> Some (`Flip mid)
      | Journal.Migration_commit mid -> Some (`Commit mid)
      | Journal.Migration_abort mid -> Some (`Abort mid)
      | _ -> None)
    (Journal.entries (Cluster.journal cl))

let check_cluster_invariants cl =
  check Alcotest.int "no duplicate installs" 0 (Cluster.duplicate_installs cl);
  check Alcotest.int "no stale-epoch frames accepted" 0 (Cluster.stale_accepted cl);
  check Alcotest.int "nothing pending" 0 (Cluster.pending_requests cl);
  check Alcotest.bool "deployment = policy" true
    (Deployment.semantically_equal (Cluster.deployment cl) acl_probes)

let test_hotspot_triggers_staged_migration () =
  let cl = adaptive_mk () in
  drive_hot cl;
  let cp = Cluster.leader_cp cl in
  check Alcotest.bool "migration started" true (Control_plane.migrations_started cp >= 1);
  check Alcotest.bool "migration committed" true
    (Control_plane.migrations_committed cp >= 1);
  check Alcotest.int "nothing aborted" 0 (Control_plane.migrations_aborted cp);
  check Alcotest.bool "rules shipped to the destination" true
    (Control_plane.rules_moved cp > 0);
  check Alcotest.bool "migration resolved" false (Control_plane.migration_active cp);
  (* the journal records the full staged sequence for the first migration *)
  (match journal_kinds cl with
  | `Begin m :: `Flip m' :: `Commit m'' :: _ when m = m' && m' = m'' -> ()
  | _ -> Alcotest.fail "journal must open with begin/flip/commit of one migration");
  check_cluster_invariants cl

(* the staged protocol under a leader crash: the standby's journal replay
   must resolve the in-flight migration by stage — installed-but-not-
   flipped rolls back, flipped finishes the retirement *)

let test_crash_before_flip_aborts () =
  (* migration_step 0.6 stretches the stages; detection lands the begin
     around t=0.3, so a crash at 0.5 hits the Installed stage *)
  let cl =
    adaptive_mk ~migration_step:0.6
      ~events:[ Fault.Controller_crash { controller = 0; at = 0.5 } ]
      ()
  in
  drive_hot cl ~until:3.;
  check Alcotest.int "one takeover" 1 (Cluster.takeovers cl);
  (match journal_kinds cl with
  | `Begin m :: rest ->
      check Alcotest.bool "the interrupted migration aborted" true
        (List.mem (`Abort m) rest);
      check Alcotest.bool "it never flipped" false (List.mem (`Flip m) rest)
  | _ -> Alcotest.fail "expected a migration to begin before the crash");
  check_cluster_invariants cl

let test_crash_after_flip_commits () =
  (* same stretch, crash at 1.1: after the flip (~0.9), before the
     commit (~1.5) — the Flipped stage, which the takeover must finish *)
  let cl =
    adaptive_mk ~migration_step:0.6
      ~events:[ Fault.Controller_crash { controller = 0; at = 1.1 } ]
      ()
  in
  drive_hot cl ~until:3.;
  check Alcotest.int "one takeover" 1 (Cluster.takeovers cl);
  (match journal_kinds cl with
  | `Begin m :: rest ->
      check Alcotest.bool "the interrupted migration flipped" true
        (List.mem (`Flip m) rest);
      check Alcotest.bool "takeover committed it" true (List.mem (`Commit m) rest);
      check Alcotest.bool "no abort" false (List.mem (`Abort m) rest)
  | _ -> Alcotest.fail "expected a migration to begin before the crash");
  check_cluster_invariants cl

let suite =
  [
    ( "bounded partitioning",
      [
        tc "fits the budget" test_bounded_fits;
        tc "minimal when everything fits" test_bounded_minimal_when_it_fits;
        tc "partition cap respected" test_bounded_cap;
        tc "invalid budget rejected" test_bounded_invalid;
        prop_bounded_still_covers;
      ] );
    ( "rebalance",
      [
        tc "measured loads" test_measured_loads;
        tc "hot partition isolated" test_rebalance_moves_hot_partition;
        tc "partitions unchanged" test_rebalance_keeps_partitions;
      ] );
    ( "split-region",
      [
        tc "fresh disjoint halves tile the source" test_split_region_fresh_disjoint_halves;
        tc "unknown pid refused" test_split_region_unknown_pid;
        tc "refit reproduces the split layout" test_refit_reproduces_split_layout;
      ] );
    ( "adaptive migration",
      [
        tc "hotspot triggers a staged migration" test_hotspot_triggers_staged_migration;
        tc "leader crash before flip: takeover aborts" test_crash_before_flip_aborts;
        tc "leader crash after flip: takeover commits" test_crash_after_flip_commits;
      ] );
  ]

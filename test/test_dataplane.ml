(* Link-state routing and the hop-by-hop data plane. *)

open Test_util

(* --- routing --- *)

let mk ~nodes links =
  Topology.create ~nodes
    (List.map
       (fun (a, b, lat) -> { Topology.src = a; dst = b; latency = lat; bandwidth = 1e9 })
       links)

let diamond = mk ~nodes:4 [ (0, 1, 3.); (1, 3, 3.); (0, 2, 1.); (2, 3, 1.); (1, 2, 1.) ]

let test_next_hops () =
  let r = Routing.compute diamond in
  check (Alcotest.option Alcotest.int) "0 -> 3 via 2" (Some 2) (Routing.next_hop r ~from:0 ~dst:3);
  check (Alcotest.option Alcotest.int) "1 -> 3 via 2 (cheaper)" (Some 2)
    (Routing.next_hop r ~from:1 ~dst:3);
  check (Alcotest.option Alcotest.int) "self" None (Routing.next_hop r ~from:1 ~dst:1)

let test_paths_match_shortest () =
  let rng = Prng.create 31 in
  let topo = Topology.waxman ~rand:(fun () -> Prng.float rng) ~nodes:25 () in
  let r = Routing.compute topo in
  for from = 0 to 24 do
    for dst = 0 to 24 do
      match (Routing.distance r ~from ~dst, Topology.distance topo from dst) with
      | Some a, Some b ->
          if Float.abs (a -. b) > 1e-9 then
            Alcotest.failf "table path %d->%d costs %f, shortest is %f" from dst a b
      | None, None -> ()
      | _ -> Alcotest.failf "reachability disagrees for %d->%d" from dst
    done
  done

let test_unreachable () =
  let g = mk ~nodes:3 [ (0, 1, 1.) ] in
  let r = Routing.compute g in
  check (Alcotest.option Alcotest.int) "no route" None (Routing.next_hop r ~from:0 ~dst:2);
  check Alcotest.bool "reachable" true (Routing.reachable r ~from:0 ~dst:1);
  check Alcotest.bool "not reachable" false (Routing.reachable r ~from:0 ~dst:2)

let test_reconvergence () =
  let r = Routing.compute diamond in
  (* best 0->3 is 0-2-3; break link 2-3: reroute via 2-1-3 or 0-1-3 *)
  let r' = Routing.after_link_failure r 2 3 in
  (match Routing.path r' ~from:0 ~dst:3 with
  | Some p ->
      check Alcotest.bool "avoids dead link" true
        (not
           (List.exists2
              (fun a b -> (a = 2 && b = 3) || (a = 3 && b = 2))
              (List.filteri (fun i _ -> i < List.length p - 1) p)
              (List.tl p)))
  | None -> Alcotest.fail "diamond stays connected");
  (* kill node 2 entirely: 0->3 must go 0-1-3 *)
  let r'' = Routing.after_node_failure r 2 in
  check (Alcotest.option (Alcotest.list Alcotest.int)) "reroute around dead node"
    (Some [ 0; 1; 3 ])
    (Routing.path r'' ~from:0 ~dst:3)

(* --- dataplane walk --- *)

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 4);
      (0, [], Action.Drop);
    ]

let build () =
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with k = 4 }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  (d, Routing.compute (Deployment.topology d))

let test_walk_miss_then_hit () =
  let d, routing = build () in
  let switch = Deployment.switch d in
  let r1 = Dataplane.packet ~routing ~switch ~now:0. ~ingress:0 (h 2 0) in
  check action "delivered with policy action" (Action.Forward 4) r1.Dataplane.action;
  check Alcotest.bool "delivered" true r1.Dataplane.delivered;
  check Alcotest.int "two tunnels: to authority, to egress" 2 r1.Dataplane.encapsulations;
  check Alcotest.int "starts at ingress" 0 (List.hd r1.Dataplane.trace);
  (* the trace visits some authority before reaching egress 4 *)
  check Alcotest.bool "visits an authority" true
    (List.exists (fun sw -> List.mem sw [ 1; 3 ]) r1.Dataplane.trace);
  check Alcotest.int "ends at egress" 4
    (List.nth r1.Dataplane.trace (List.length r1.Dataplane.trace - 1));
  (* second packet: cache hit, single tunnel straight to egress *)
  let r2 = Dataplane.packet ~routing ~switch ~now:0.1 ~ingress:0 (h 2 0) in
  check Alcotest.int "one tunnel after caching" 1 r2.Dataplane.encapsulations;
  check (Alcotest.list Alcotest.int) "direct trace" [ 0; 1; 2; 3; 4 ] r2.Dataplane.trace

let test_walk_drop_local () =
  let d, routing = build () in
  let r = Dataplane.packet ~routing ~switch:(Deployment.switch d) ~now:0. ~ingress:0 (h 1 0) in
  check action "dropped" Action.Drop r.Dataplane.action;
  check Alcotest.bool "a drop verdict is a delivery" true r.Dataplane.delivered;
  check Alcotest.bool "no egress tunnel" true (r.Dataplane.encapsulations <= 1)

let test_walk_agrees_with_inject () =
  (* the faithful executor and the shortcut must agree on action and
     latency for identical fresh deployments *)
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let hdr = h (Prng.int rng 256) (Prng.int rng 256) in
    let d1, routing = build () in
    let d2, _ = build () in
    let w = Dataplane.packet ~routing ~switch:(Deployment.switch d1) ~now:0. ~ingress:0 hdr in
    let o = Deployment.inject d2 ~now:0. ~ingress:0 hdr in
    if not (Action.equal w.Dataplane.action o.Deployment.action) then
      Alcotest.fail "walk and inject disagree on action";
    if w.Dataplane.delivered && Float.abs (w.Dataplane.latency -. o.Deployment.latency) > 1e-9
    then
      Alcotest.failf "latency disagrees: walk %f vs inject %f" w.Dataplane.latency
        o.Deployment.latency
  done

let test_walk_survives_reroute () =
  (* break a link on the ingress-authority path: the IGP reconverges and
     the walk still delivers, over a longer path *)
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 3) ] in
  let topo = Topology.full_mesh 4 () in
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with k = 2 }
      ~policy ~topology:topo ~authority_ids:[ 1 ] ()
  in
  let routing = Routing.compute topo in
  let before = Dataplane.packet ~routing ~switch:(Deployment.switch d) ~now:0. ~ingress:0 (h 9 9) in
  check Alcotest.bool "delivered before" true before.Dataplane.delivered;
  Deployment.flush_caches d;
  let routing' = Routing.after_link_failure routing 0 1 in
  let after = Dataplane.packet ~routing:routing' ~switch:(Deployment.switch d) ~now:1. ~ingress:0 (h 9 9) in
  check Alcotest.bool "delivered after reroute" true after.Dataplane.delivered;
  check action "same action" before.Dataplane.action after.Dataplane.action;
  check Alcotest.bool "path got longer" true
    (List.length after.Dataplane.trace > List.length before.Dataplane.trace)

let test_walk_unreachable_authority () =
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 2) ] in
  let topo = mk ~nodes:3 [ (0, 1, 1e-4); (1, 2, 1e-4) ] in
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with k = 1 }
      ~policy ~topology:topo ~authority_ids:[ 1 ] ()
  in
  (* IGP state where the authority became unreachable *)
  let routing = Routing.after_node_failure (Routing.compute topo) 1 in
  let r = Dataplane.packet ~routing ~switch:(Deployment.switch d) ~now:0. ~ingress:0 (h 0 0) in
  check Alcotest.bool "not delivered" false r.Dataplane.delivered;
  check Alcotest.bool "blames reachability, not ttl" true
    (r.Dataplane.drop_reason = Some Dataplane.Unreachable)

let suite =
  [
    ( "routing",
      [
        tc "next hops" test_next_hops;
        tc "table paths are shortest" test_paths_match_shortest;
        tc "unreachable" test_unreachable;
        tc "reconvergence after failures" test_reconvergence;
      ] );
    ( "dataplane",
      [
        tc "miss tunnels then cache cut-through" test_walk_miss_then_hit;
        tc "local drop" test_walk_drop_local;
        tc "walk = inject" test_walk_agrees_with_inject;
        tc "survives IGP reroute" test_walk_survives_reroute;
        tc "unreachable authority" test_walk_unreachable_authority;
      ] );
  ]

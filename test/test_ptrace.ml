(* Causal packet-path tracing: postcard rings, path reconstruction and
   the invariant checker.  Three groups:

   - ring mechanics: provenance packing, wraparound accounting, the
     truncation rule;
   - the checker: every invariant rule fired by a deliberately
     corrupted postcard stream built through [Paths.of_postcards];
   - end-to-end determinism: the traced E-SCALE run yields
     byte-identical [difane-paths-v1] JSON at domains 1 and 4, and
     tracing itself never perturbs the simulation digest. *)

open Test_util

let pack = Ptrace.pack_provenance

(* Build one postcard; defaults make a shard-0 packet-0 hop. *)
let pc ?(shard = 0) ?(pkt = 0) ?(sw = 0) ?(rule = -1) ?(aux = 0) at kind =
  {
    Ptrace.at;
    shard;
    pkt;
    kind;
    switch = sw;
    rule;
    aux;
    key_lo = 0xbeef;
    key_hi = 0x5;
  }

let violations ?wrapped cards = Paths.check (Paths.of_postcards ?wrapped (Array.of_list cards))

let has_violation sub vs =
  List.exists
    (fun v ->
      let lv = String.length v and ls = String.length sub in
      let rec at i = i + ls <= lv && (String.sub v i ls = sub || at (i + 1)) in
      at 0)
    vs

let check_fires name sub cards =
  let vs = violations cards in
  if not (has_violation sub vs) then
    Alcotest.failf "%s: expected a violation containing %S, got [%s]" name sub
      (String.concat "; " vs)

(* ---- provenance packing ---- *)

let test_provenance () =
  List.iter
    (fun (origin, pid) ->
      let packed = pack ~origin ~pid in
      check Alcotest.int "origin" origin (Ptrace.provenance_origin packed);
      check Alcotest.int "pid" pid (Ptrace.provenance_pid packed))
    [ (0, 0); (59, 7); (1_000_000, 2_000_000); (0, 2_097_150); (-1, 5); (3, -1) ];
  check Alcotest.int "unknown pair packs to 0" 0 (pack ~origin:(-1) ~pid:(-1))

(* ---- ring wraparound ---- *)

(* 5 packets x 3 postcards into a capacity-8 ring: 7 oldest postcards
   are overwritten, the boundary lands mid-packet-2, so pkt 2 survives
   truncated (first surviving hop is a transit, not a verdict) while
   pkts 3 and 4 survive whole. *)
let test_wraparound () =
  Telemetry.reset ();
  Ptrace.enable ~capacity:8 ();
  Ptrace.bind ~shard:0;
  for i = 0 to 4 do
    let t = float_of_int i in
    ignore (Ptrace.begin_packet_key t ~lo:i ~hi:0);
    Ptrace.emit ~at:t Ptrace.Miss ~switch:0 ~rule:(-1) ~aux:1;
    Ptrace.emit ~at:(t +. 0.1) Ptrace.Transit ~switch:1 ~rule:(-1) ~aux:0;
    Ptrace.emit ~at:(t +. 0.2) Ptrace.Deliver ~switch:1 ~rule:(-1) ~aux:0
  done;
  Ptrace.disable ();
  check Alcotest.int "emitted counts overwritten history" 15 (Ptrace.emitted ());
  check Alcotest.int "overwritten" 7 (Ptrace.overwritten ());
  check Alcotest.bool "shard 0 wrapped" true (Ptrace.shard_wrapped 0);
  check Alcotest.bool "unknown shard did not wrap" false (Ptrace.shard_wrapped 9);
  let cards = Ptrace.postcards () in
  check Alcotest.int "window is the ring capacity" 8 (Array.length cards);
  Array.iteri
    (fun i (p : Ptrace.postcard) ->
      if i > 0 then
        check Alcotest.bool "window is oldest-first" true (cards.(i - 1).Ptrace.at <= p.Ptrace.at))
    cards;
  let t = Paths.reconstruct () in
  check Alcotest.int "trace totals: emitted" 15 t.Paths.emitted;
  check Alcotest.int "trace totals: overwritten" 7 t.Paths.overwritten;
  let by_pkt pkt = List.find (fun (p : Paths.path) -> p.Paths.pkt = pkt) t.Paths.paths in
  check Alcotest.int "pkts 2..4 survive" 3 (List.length t.Paths.paths);
  check Alcotest.bool "mid-cut path is truncated" true (by_pkt 2).Paths.truncated;
  check Alcotest.bool "whole path is not truncated" false (by_pkt 3).Paths.truncated;
  check Alcotest.bool "truncated paths are not judged" true (Paths.check t = []);
  check Alcotest.int "truncated path keeps its key" 3 (by_pkt 3).Paths.key_lo;
  Ptrace.clear ();
  check Alcotest.int "clear empties the rings" 0 (Array.length (Ptrace.postcards ()))

(* Disabled emission is inert: no ring, no context, id -1. *)
let test_disabled_noop () =
  Telemetry.reset ();
  if Ptrace.enabled () then Ptrace.disable ();
  check Alcotest.int "begin_packet_key returns -1" (-1)
    (Ptrace.begin_packet_key 0. ~lo:1 ~hi:2);
  Ptrace.emit ~at:0. Ptrace.Deliver ~switch:0 ~rule:(-1) ~aux:0;
  check Alcotest.int "nothing recorded" 0 (Array.length (Ptrace.postcards ()))

(* ---- the invariant checker, rule by rule ---- *)

let miss ?(pkt = 0) t = pc ~pkt ~sw:0 ~aux:1 t Ptrace.Miss
let deliver ?(pkt = 0) ?(sw = 1) t = pc ~pkt ~sw t Ptrace.Deliver

let test_checker_terminal () =
  check_fires "missing terminal" "has no terminal postcard" [ miss 0. ];
  check_fires "double terminal" "has 2 terminal postcards"
    [ miss 0.; deliver 1.; deliver 2. ];
  check_fires "hop after terminal" "transit postcard after its terminal"
    [ miss 0.; deliver 1.; pc ~sw:2 2. Ptrace.Transit ];
  (* deferred install traffic after the terminal is legitimate *)
  check Alcotest.bool "trailing install allowed" true
    (violations
       [
         miss 0.;
         pc ~sw:0 0.5 Ptrace.Authority_serve;
         deliver 1.;
         pc ~sw:0 ~rule:7 ~aux:(pack ~origin:3 ~pid:0) 1.5 Ptrace.Install;
         pc ~sw:0 ~rule:4 ~aux:Ptrace.replace_evicted 1.5 Ptrace.Replace;
       ]
    = [])

let test_checker_no_loop () =
  check_fires "loop within a leg" "revisits switch 3 within one leg"
    [
      miss 0.;
      pc ~sw:3 1. Ptrace.Transit;
      pc ~sw:4 2. Ptrace.Transit;
      pc ~sw:3 3. Ptrace.Transit;
      deliver 4.;
    ];
  (* a star topology revisits the hub on the next leg: legal *)
  check Alcotest.bool "revisit across legs allowed" true
    (violations
       [
         miss 0.;
         pc ~sw:3 1. Ptrace.Transit;
         pc ~sw:0 1.5 Ptrace.Authority_serve;
         pc ~sw:3 2. Ptrace.Transit;
         deliver 3.;
       ]
    = [])

let test_checker_serve_cause () =
  check_fires "serve without miss" "authority-served without an ingress miss"
    [ pc ~sw:2 0. Ptrace.Authority_serve; deliver 1. ]

let test_checker_install_cause () =
  check_fires "provenance install without serve"
    "with no authority serve or controller fallback"
    [ miss 0.; pc ~sw:0 ~rule:9 ~aux:(pack ~origin:2 ~pid:1) 1. Ptrace.Install; deliver 2. ];
  (* a controller fallback is an acceptable cause too *)
  check Alcotest.bool "controller-caused install allowed" true
    (violations
       [
         miss 0.;
         pc ~sw:0 ~rule:2 1. Ptrace.Controller;
         pc ~sw:0 ~rule:9 ~aux:(pack ~origin:2 ~pid:1) 2. Ptrace.Install;
         deliver 3.;
       ]
    = [])

let test_checker_backpressure () =
  check_fires "serve after deferral" "authority-served after a backpressure deferral"
    [
      miss 0.;
      pc ~sw:5 1. Ptrace.Backpressure;
      pc ~sw:5 2. Ptrace.Authority_serve;
      deliver 3.;
    ];
  check_fires "deferral never resolved" "reached neither controller nor drop"
    [ miss 0.; pc ~sw:5 1. Ptrace.Backpressure; deliver 2. ];
  check Alcotest.bool "deferral resolved by controller" true
    (violations
       [ miss 0.; pc ~sw:5 1. Ptrace.Backpressure; pc 2. Ptrace.Controller; deliver 3. ]
    = [])

let test_checker_queue_drop () =
  check_fires "queue_full verdict without shed" "with no congestion-layer shed"
    [ miss 0.; pc ~aux:Ptrace.drop_queue_full 1. Ptrace.Drop ];
  check_fires "shed without queue_full verdict" "but was not dropped queue_full"
    [ miss 0.; pc ~sw:0 ~aux:3 1. Ptrace.Queue_drop; deliver 2. ];
  check Alcotest.bool "agreeing layers pass" true
    (violations
       [ miss 0.; pc ~sw:0 ~aux:3 1. Ptrace.Queue_drop; pc ~aux:Ptrace.drop_queue_full 2. Ptrace.Drop ]
    = [])

let test_checker_drop_reason () =
  check_fires "unknown reason code" "unknown reason code 99"
    [ miss 0.; pc ~aux:99 1. Ptrace.Drop ]

let test_checker_hit_install () =
  check_fires "hit with no live install" "with no live install"
    [ pc ~rule:5 ~sw:2 ~aux:0 0. Ptrace.Cache_hit; deliver 1. ];
  (* a control-plane install makes the hit legitimate... *)
  let install = pc ~pkt:(-1) ~rule:5 ~sw:2 0. Ptrace.Install in
  let hit = pc ~rule:5 ~sw:2 1. Ptrace.Cache_hit in
  check Alcotest.bool "live install satisfies the hit" true
    (violations [ install; hit; deliver 2. ] = []);
  (* ...until an invalidate kills the entry *)
  check_fires "hit after invalidate" "with no live install"
    [
      install;
      pc ~pkt:(-1) ~rule:5 ~sw:2 ~aux:Ptrace.invalidate_migration 0.5 Ptrace.Invalidate;
      hit;
      deliver 2.;
    ];
  (* liveness is judged per shard: shard 1's install cannot vouch for
     shard 0's hit *)
  check_fires "install on another shard" "with no live install"
    [
      pc ~shard:0 ~rule:5 ~sw:2 0. Ptrace.Cache_hit;
      deliver ~pkt:0 1.;
      pc ~shard:1 ~pkt:(-1) ~rule:5 ~sw:2 0. Ptrace.Install;
    ];
  (* wraparound may have eaten the install: the rule must stand down *)
  let t =
    Paths.of_postcards ~wrapped:(fun _ -> true)
      (Array.of_list [ hit; deliver 2. ])
  in
  check Alcotest.bool "skipped while rings are whole-trace wrapped" true
    (List.for_all
       (fun v ->
         not (has_violation "hit-install" [ v ]))
       (Paths.check { t with Paths.overwritten = 1 }))

(* ---- queries ---- *)

let test_select () =
  let cards =
    [
      miss ~pkt:0 0.;
      pc ~pkt:0 ~sw:7 0.5 Ptrace.Transit;
      deliver ~pkt:0 1.;
      miss ~pkt:1 10.;
      pc ~pkt:1 ~aux:Ptrace.drop_unreachable 11. Ptrace.Drop;
    ]
  in
  let t = Paths.of_postcards (Array.of_list cards) in
  let n q = List.length (Paths.select q t) in
  check Alcotest.int "any matches all" 2 (n Paths.any);
  check Alcotest.int "switch filter" 1 (n { Paths.any with Paths.q_switch = Some 7 });
  check Alcotest.int "outcome filter" 1 (n { Paths.any with Paths.q_outcome = Some `Dropped });
  check Alcotest.int "since filter" 1 (n { Paths.any with Paths.q_since = Some 5. });
  check Alcotest.int "until filter" 1 (n { Paths.any with Paths.q_until = Some 5. });
  check Alcotest.int "key filter" 2 (n { Paths.any with Paths.q_key = Some (0xbeef, 0x5) });
  check Alcotest.int "key mismatch" 0 (n { Paths.any with Paths.q_key = Some (1, 2) })

(* ---- end-to-end determinism ---- *)

let scale_json ~domains =
  Telemetry.reset ();
  Ptrace.enable ();
  let spec = { Experiments.E_scale.quick_spec with Experiments.E_scale.domains } in
  let r = Experiments.E_scale.run ~seed:11 spec in
  Ptrace.disable ();
  let t = Paths.reconstruct () in
  check Alcotest.bool "causal invariants hold on a real run" true (Paths.check t = []);
  (Experiments.E_scale.digest r, Paths.to_json t)

let test_shard_merge_determinism () =
  let d1, j1 = scale_json ~domains:1 in
  let d4, j4 = scale_json ~domains:4 in
  check Alcotest.string "digest identical across domain counts" d1 d4;
  check Alcotest.string "paths JSON identical across domain counts" j1 j4;
  check Alcotest.bool "the run actually traced" true (String.length j1 > 1000)

let test_tracing_noninterference () =
  Telemetry.reset ();
  if Ptrace.enabled () then Ptrace.disable ();
  let spec = Experiments.E_scale.quick_spec in
  let off = Experiments.E_scale.digest (Experiments.E_scale.run ~seed:7 spec) in
  Telemetry.reset ();
  Ptrace.enable ();
  let traced = Experiments.E_scale.digest (Experiments.E_scale.run ~seed:7 spec) in
  Ptrace.disable ();
  Ptrace.clear ();
  check Alcotest.string "tracing does not perturb the digest" off traced

(* ---- Telemetry.Trace lanes: deterministic multi-domain merge ---- *)

let test_trace_lane_merge () =
  Telemetry.reset ();
  Telemetry.Trace.enable ~capacity:16 ();
  (* enable binds this domain to lane 0 *)
  Telemetry.Trace.event ~at:5. ~name:"a" "lane0-first";
  Telemetry.Trace.bind ~lane:2;
  Telemetry.Trace.event ~at:1. ~name:"c" "lane2";
  Telemetry.Trace.bind ~lane:1;
  Telemetry.Trace.event ~at:9. ~name:"b" "lane1";
  Telemetry.Trace.bind ~lane:0;
  Telemetry.Trace.event ~at:6. ~name:"a" "lane0-second";
  let details = List.map (fun e -> e.Telemetry.Trace.detail) (Telemetry.Trace.events ()) in
  check
    Alcotest.(list string)
    "lane-id order, oldest-first within a lane — not time order"
    [ "lane0-first"; "lane0-second"; "lane1"; "lane2" ]
    details;
  check Alcotest.int "emitted sums lanes" 4 (Telemetry.Trace.emitted ());
  Telemetry.Trace.disable ();
  Telemetry.reset ()

(* ---- sub-microsecond histogram ladder ---- *)

let test_sub_us_buckets () =
  let b = Telemetry.default_buckets in
  check Alcotest.int "17 bounds" 17 (Array.length b);
  check (Alcotest.float 1e-12) "ladder reaches ~15.6 ns" 1.5625e-8 b.(0);
  check (Alcotest.float 1e-12) "the old 1 us floor survives" 1e-6 b.(3);
  Array.iteri (fun i x -> if i > 0 then check Alcotest.bool "ascending" true (x > b.(i - 1))) b;
  let h = Telemetry.histogram "ptrace_test_hist" in
  Telemetry.observe h 4.0e-8;
  Telemetry.observe h 1.0e-4;
  let cumulative =
    match
      List.find_opt (fun s -> s.Telemetry.name = "ptrace_test_hist") (Telemetry.snapshot ())
    with
    | Some { Telemetry.v = Telemetry.Histogram { buckets; _ }; _ } ->
        Array.of_list (List.map snd buckets)
    | _ -> Alcotest.fail "histogram not in snapshot"
  in
  (* 40 ns lands in the 62.5 ns bucket — below the old 1 us floor the
     ladder used to start at *)
  check Alcotest.int "below 15.6 ns: nothing" 0 cumulative.(0);
  check Alcotest.int "40 ns resolved at 62.5 ns" 1 cumulative.(1);
  check Alcotest.int "still one at the old 1 us floor" 1 cumulative.(3);
  check Alcotest.int "both observations by +inf" 2 cumulative.(Array.length cumulative - 1);
  Telemetry.reset ()

let suite =
  [
    ( "ptrace",
      [
      tc "provenance packing roundtrip" test_provenance;
      tc "postcard ring wraparound and truncation" test_wraparound;
      tc "disabled emission is inert" test_disabled_noop;
      tc "checker: terminal rules" test_checker_terminal;
      tc "checker: no-loop within a leg" test_checker_no_loop;
      tc "checker: serve-cause" test_checker_serve_cause;
      tc "checker: install-cause" test_checker_install_cause;
      tc "checker: backpressure resolution" test_checker_backpressure;
      tc "checker: queue-drop cross-layer agreement" test_checker_queue_drop;
      tc "checker: drop-reason validity" test_checker_drop_reason;
      tc "checker: hit-install liveness" test_checker_hit_install;
      tc "path queries" test_select;
      tc "shard merge: domains 1 vs 4 byte-identical" test_shard_merge_determinism;
      tc "tracing never perturbs the digest" test_tracing_noninterference;
      tc "telemetry trace lanes merge deterministically" test_trace_lane_merge;
      tc "sub-microsecond histogram ladder" test_sub_us_buckets;
      ] );
  ]

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (20, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (0, [], Action.Drop);
    ]

(* --- channel --- *)

let test_channel_latency () =
  let ch = Channel.create s2 ~latency:0.5 in
  Channel.send ch ~now:0. ~xid:1 Message.Hello;
  check Alcotest.int "in flight" 0 (List.length (Channel.poll ch ~now:0.4));
  let arrived = Channel.poll ch ~now:0.5 in
  check Alcotest.int "arrived" 1 (List.length arrived);
  (let x, _, _ = List.hd arrived in
   check Alcotest.int "xid preserved" 1 x);
  check Alcotest.int "drained" 0 (Channel.pending ch)

let test_channel_order_and_counters () =
  let ch = Channel.create s2 ~latency:0.1 in
  Channel.send ch ~now:0. ~xid:1 (Message.Echo_request 1);
  Channel.send ch ~now:0.01 ~xid:2 (Message.Echo_request 2);
  let msgs = Channel.poll ch ~now:1. in
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2 ] (List.map (fun (x, _, _) -> x) msgs);
  check Alcotest.int "frames" 2 (Channel.frames_carried ch);
  check Alcotest.bool "bytes counted" true (Channel.bytes_carried ch >= 32)

(* --- switch control handler --- *)

let test_handle_echo_barrier () =
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  (match Switch.handle_control sw ~now:0. (Message.Echo_request 7) with
  | [ Message.Echo_reply 7 ] -> ()
  | _ -> Alcotest.fail "echo mishandled");
  match Switch.handle_control sw ~now:0. (Message.Barrier_request 3) with
  | [ Message.Barrier_reply 3 ] -> ()
  | _ -> Alcotest.fail "barrier mishandled"

let test_handle_stats () =
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  let r = Rule.make ~id:5 ~priority:1 (Pred.any s2) (Action.Forward 1) in
  ignore (Switch.install_cache_rule sw ~now:0. r);
  ignore (Switch.process sw ~now:1. (h 1 1));
  ignore (Switch.process sw ~now:2. (h 2 2));
  match
    Switch.handle_control sw ~now:10.
      (Message.Stats_request { Message.table_bank = Message.Cache; cookie = 42 })
  with
  | [ Message.Stats_reply { Message.request_cookie = 42; flows = [ f ] } ] ->
      check Alcotest.int "rule id" 5 f.Message.rule_id;
      check Alcotest.int64 "packets" 2L f.Message.packets;
      check (Alcotest.float 1e-9) "duration" 10. f.Message.duration
  | _ -> Alcotest.fail "stats mishandled"

let test_handle_flow_mod () =
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  let r = Rule.make ~id:5 ~priority:1 (Pred.any s2) Action.Drop in
  let fm command =
    Message.Flow_mod
      { Message.command; bank = Message.Cache; rule = r; idle_timeout = None;
        hard_timeout = None }
  in
  check Alcotest.int "add silent" 0 (List.length (Switch.handle_control sw ~now:0. (fm Message.Add)));
  check Alcotest.int "added" 1 (Switch.cache_occupancy sw);
  ignore (Switch.handle_control sw ~now:0. (fm Message.Delete));
  check Alcotest.int "deleted" 0 (Switch.cache_occupancy sw)

let test_xid_dedup () =
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  let prule = Rule.make ~id:1 ~priority:0 (Pred.any s2) (Action.To_authority 1) in
  let fm =
    Message.Flow_mod
      { Message.command = Message.Add; bank = Message.Partition; rule = prule;
        idle_timeout = None; hard_timeout = None }
  in
  (* a tracked partition add is acked; its replay is re-acked from memory *)
  (match Switch.handle_control ~xid:5 sw ~now:0. fm with
  | [ Message.Ack 5 ] -> ()
  | _ -> Alcotest.fail "partition add not acked");
  (match Switch.handle_control ~xid:5 sw ~now:0. fm with
  | [ Message.Ack 5 ] -> ()
  | _ -> Alcotest.fail "replay not re-acked");
  (match Switch.handle_control ~xid:6 sw ~now:0. (Message.Barrier_request 1) with
  | [ Message.Barrier_reply 1 ] -> ()
  | _ -> Alcotest.fail "barrier mishandled");
  (* the duplicate add was suppressed: the bank works and holds one rule *)
  (match Switch.process sw ~now:0. (h 2 0) with
  | Switch.Tunnel 1 -> ()
  | _ -> Alcotest.fail "partition bank not committed");
  (* replaying an Install_partition must not duplicate the table *)
  let part = Partitioner.compute policy ~k:2 in
  let p = List.hd part.Partitioner.partitions in
  let ip =
    Message.Install_partition
      { Message.pid = p.pid; region = p.region; table_rules = Classifier.rules p.table }
  in
  (match Switch.handle_control ~xid:7 sw ~now:0. ip with
  | [ Message.Ack 7 ] -> ()
  | _ -> Alcotest.fail "install not acked");
  ignore (Switch.handle_control ~xid:7 sw ~now:0. ip);
  check Alcotest.int "one authority table despite replay" 1
    (List.length (Switch.authority_partitions sw))

let test_straggler_add_merges_after_barrier () =
  (* a partition add whose first copy was lost arrives (as a
     retransmission) after the barrier committed the rest of the batch:
     it must merge into the live bank, not wait for a barrier that will
     never come *)
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  let prule id f1 =
    Rule.make ~id ~priority:0
      (Pred.make s2 [ Ternary.exact ~width:8 (Int64.of_int f1); Ternary.any 8 ])
      (Action.To_authority 1)
  in
  let fm rule =
    Message.Flow_mod
      { Message.command = Message.Add; bank = Message.Partition; rule;
        idle_timeout = None; hard_timeout = None }
  in
  ignore (Switch.handle_control ~xid:1 sw ~now:0. (fm (prule 0 7)));
  ignore (Switch.handle_control ~xid:2 sw ~now:0. (Message.Barrier_request 9));
  (* the straggler (xid 3 was lost in flight the first time) *)
  ignore (Switch.handle_control ~xid:3 sw ~now:1. (fm (prule 1 9)));
  (match Switch.process sw ~now:1. (Header.make s2 [| 9L; 0L |]) with
  | Switch.Tunnel 1 -> ()
  | _ -> Alcotest.fail "straggler add never reached the partition bank");
  match Switch.process sw ~now:1. (Header.make s2 [| 7L; 0L |]) with
  | Switch.Tunnel 1 -> ()
  | _ -> Alcotest.fail "committed rule lost by the merge"

(* --- control plane --- *)

let build_cp ?(config = Control_plane.default_config) () =
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with replication = 2; k = 4 }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  (d, Control_plane.create ~config d)

let drive cp ~from ~until ~step =
  let t = ref from in
  while !t <= until do
    Control_plane.tick cp ~now:!t;
    t := !t +. step
  done

let test_echo_keeps_alive () =
  let _, cp = build_cp () in
  drive cp ~from:0. ~until:20. ~step:0.25;
  check (Alcotest.list Alcotest.int) "nothing failed" [] (Control_plane.failed_switches cp)

let test_failure_detection_and_failover () =
  let d, cp = build_cp () in
  ignore d;
  Control_plane.kill_switch cp 1;
  drive cp ~from:0. ~until:20. ~step:0.25;
  check (Alcotest.list Alcotest.int) "switch 1 declared dead" [ 1 ]
    (Control_plane.failed_switches cp);
  (* failover happened: 3 is the only authority now *)
  check (Alcotest.list Alcotest.int) "authority failover" [ 3 ]
    (Deployment.authority_ids (Control_plane.deployment cp));
  (* and the deployment still enforces the policy *)
  let rng = Prng.create 3 in
  let probes = List.init 100 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "post-failover semantics" true
    (Deployment.semantically_equal (Control_plane.deployment cp) probes)

let test_stats_aggregation () =
  let d, cp = build_cp () in
  (* create traffic so an ingress cache holds spliced entries with hits *)
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 2 0) in
  check Alcotest.bool "cached" true (Option.is_some o.Deployment.installed);
  ignore (Deployment.inject d ~now:0.1 ~ingress:0 (h 2 0));
  ignore (Deployment.inject d ~now:0.2 ~ingress:0 (h 2 0));
  drive cp ~from:1. ~until:12. ~step:0.5;
  let counters = Control_plane.rule_counters cp in
  (* rule 1 (the broad forward) decided that flow; counters must attribute
     the cache hits to it *)
  match List.assoc_opt 1 counters with
  | Some n -> check Alcotest.bool "packets attributed" true (Int64.compare n 2L >= 0)
  | None -> Alcotest.failf "no counter for origin rule 1 (got %d entries)" (List.length counters)

let test_targeted_invalidation () =
  let d, cp = build_cp () in
  ignore (Deployment.inject d ~now:0. ~ingress:0 (h 2 0));
  check Alcotest.bool "entry cached" true (Deployment.total_cache_entries d > 0);
  let sent = Control_plane.delete_cached_origin cp ~now:1. ~origin_id:1 in
  check Alcotest.bool "deletions sent" true (sent > 0);
  (* deliver the deletions *)
  drive cp ~from:1.001 ~until:1.1 ~step:0.01;
  check Alcotest.int "cache emptied" 0 (Deployment.total_cache_entries d)

let test_push_deployment () =
  (* blank switches, configuration delivered purely as encoded messages *)
  let d =
    Deployment.build ~install:false
      ~config:{ Deployment.default_config with replication = 2; k = 4 }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  (* nothing installed yet: packets are unmatched *)
  (match Switch.process (Deployment.switch d 0) ~now:0. (h 2 0) with
  | Switch.Unmatched -> ()
  | _ -> Alcotest.fail "blank switch matched something");
  let cp = Control_plane.create d in
  Control_plane.push_deployment cp ~now:0.;
  drive cp ~from:0.001 ~until:0.2 ~step:0.01;
  (* all banks installed via messages: full DIFANE semantics *)
  let rng = Prng.create 21 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "message-driven install is faithful" true
    (Deployment.semantically_equal d probes);
  (* every partition table reached both replicas *)
  List.iter
    (fun (p : Partitioner.partition) ->
      let holders =
        List.filter
          (fun i ->
            List.exists
              (fun (q : Partitioner.partition) -> q.pid = p.pid)
              (Switch.authority_partitions (Deployment.switch d i)))
          [ 0; 1; 2; 3; 4 ]
      in
      check Alcotest.int "two replicas hold the table" 2 (List.length holders))
    (Deployment.partitioner d).Partitioner.partitions;
  check Alcotest.bool "frames were spent" true (Control_plane.control_frames cp > 10)

let test_partition_transfer_codec () =
  let part = Partitioner.compute policy ~k:2 in
  let p = List.hd part.Partitioner.partitions in
  let msg =
    Message.Install_partition
      { Message.pid = p.pid; region = p.region; table_rules = Classifier.rules p.table }
  in
  (match Message.decode s2 (Message.encode ~xid:5 msg) with
  | Ok (5, _, msg') -> check Alcotest.bool "transfer roundtrip" true (Message.equal msg msg')
  | _ -> Alcotest.fail "transfer decode failed");
  match Message.decode s2 (Message.encode ~xid:6 (Message.Drop_partition 3)) with
  | Ok (6, _, Message.Drop_partition 3) -> ()
  | _ -> Alcotest.fail "drop_partition roundtrip failed"

let test_control_overhead_counted () =
  let _, cp = build_cp () in
  drive cp ~from:0. ~until:5. ~step:0.5;
  check Alcotest.bool "frames flowed" true (Control_plane.control_frames cp > 0);
  check Alcotest.bool "bytes counted" true
    (Control_plane.control_bytes cp > Control_plane.control_frames cp)

(* --- reliability under faults --- *)

let blank_deployment () =
  Deployment.build ~install:false
    ~config:{ Deployment.default_config with replication = 2; k = 4 }
    ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()

let test_lossy_push_converges () =
  (* a 25% frame-loss channel (with duplication, corruption, jitter and
     reordering riding along): retransmission must still converge the
     full configuration, exactly *)
  let d = blank_deployment () in
  let faults = Fault.plan ~seed:11 ~link:(Fault.lossy_link ~jitter:2e-3 0.25) () in
  let cp =
    Control_plane.create
      ~config:{ Control_plane.default_config with retx_timeout = 0.02 }
      ~faults d
  in
  Control_plane.push_deployment cp ~now:0.;
  drive cp ~from:0.005 ~until:3. ~step:0.005;
  let stats = Control_plane.stats cp in
  check Alcotest.bool "channel really was lossy" true (stats.Control_plane.dropped > 0);
  check Alcotest.bool "retransmissions happened" true
    (Control_plane.retransmissions cp > 0);
  check Alcotest.int "every request eventually acked" 0
    (Control_plane.pending_requests cp);
  check Alcotest.int "nothing abandoned" 0 (Control_plane.giveups cp);
  let rng = Prng.create 21 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "converged configuration is exact" true
    (Deployment.semantically_equal d probes)

let test_crash_restart_resync () =
  let d = blank_deployment () in
  let cp = Control_plane.create d in
  Control_plane.push_deployment cp ~now:0.;
  drive cp ~from:0.001 ~until:0.5 ~step:0.01;
  check Alcotest.bool "authority installed" true
    (Switch.authority_partitions (Deployment.switch d 1) <> []);
  (* the device dies losing all state, then comes back blank *)
  Control_plane.crash_switch cp ~now:1. 1;
  check (Alcotest.list Alcotest.int) "crash wiped the banks" []
    (List.map (fun (p : Partitioner.partition) -> p.pid)
       (Switch.authority_partitions (Deployment.switch d 1)));
  drive cp ~from:1.01 ~until:2. ~step:0.05;
  Control_plane.restart_switch cp ~now:2. 1;
  drive cp ~from:2.001 ~until:3. ~step:0.01;
  (* resync restored everything *)
  check Alcotest.bool "authority tables back after resync" true
    (Switch.authority_partitions (Deployment.switch d 1) <> []);
  check (Alcotest.list Alcotest.int) "not counted as failed" []
    (Control_plane.failed_switches cp);
  let rng = Prng.create 4 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "semantics restored" true (Deployment.semantically_equal d probes)

let test_premature_death_recovers () =
  (* echo losses can declare a live switch dead; the next answered probe
     must take it back (and restore its authority duty) *)
  let d = blank_deployment () in
  let cp = Control_plane.create d in
  Control_plane.push_deployment cp ~now:0.;
  drive cp ~from:0.001 ~until:0.5 ~step:0.01;
  (* simulate the false positive directly: down the control link long
     enough for detection, then restore it *)
  Control_plane.set_link cp ~now:1. 1 false;
  drive cp ~from:1.01 ~until:8. ~step:0.25;
  check (Alcotest.list Alcotest.int) "declared dead while link down" [ 1 ]
    (Control_plane.failed_switches cp);
  check (Alcotest.list Alcotest.int) "demoted" [ 3 ]
    (Deployment.authority_ids (Control_plane.deployment cp));
  Control_plane.set_link cp ~now:8.5 1 true;
  drive cp ~from:8.51 ~until:15. ~step:0.25;
  check (Alcotest.list Alcotest.int) "recovered on the next echo" []
    (Control_plane.failed_switches cp);
  check (Alcotest.list Alcotest.int) "authority restored" [ 1; 3 ]
    (Deployment.authority_ids (Control_plane.deployment cp))

let test_degraded_packet_in_answered () =
  (* with every replica of a partition dead, a switch that punts the
     packet to the controller gets a NOX-style packet-out back *)
  let d = blank_deployment () in
  let cp = Control_plane.create d in
  Control_plane.push_deployment cp ~now:0.;
  drive cp ~from:0.001 ~until:0.5 ~step:0.01;
  check Alcotest.int64 "no degraded traffic yet" 0L (Control_plane.degraded_handled cp);
  (* switch 0 reports a miss it cannot tunnel anywhere *)
  Control_plane.inject_packet_in cp ~now:1. 0
    (Message.Packet_in { Message.ingress = 0; header = h 2 0; reason = `No_match });
  drive cp ~from:1.001 ~until:1.2 ~step:0.01;
  check Alcotest.int64 "controller answered the miss" 1L
    (Control_plane.degraded_handled cp)

let test_auto_rebalance () =
  let policy =
    Classifier.of_specs s2
      [
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
        (10, [ ("f1", "1xxxxxxx") ], Action.Forward 3);
        (0, [], Action.Drop);
      ]
  in
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with k = 4; cache_capacity = 0 }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  let cp =
    Control_plane.create
      ~config:{ Control_plane.default_config with rebalance_interval = Some 1.0 }
      d
  in
  (* skewed traffic into one flowspace corner *)
  for i = 0 to 199 do
    ignore (Deployment.inject d ~now:0. ~ingress:0 (h (i mod 16) (i mod 8)))
  done;
  drive cp ~from:0. ~until:3. ~step:0.25;
  check Alcotest.bool "rebalanced at least once" true (Control_plane.rebalances cp >= 1);
  let d' = Control_plane.deployment cp in
  (* the hottest partition now sits alone on its authority *)
  let loads = Deployment.measured_partition_loads d' in
  let hot_pid, _ =
    List.fold_left (fun (bp, bl) (p, l) -> if l > bl then (p, l) else (bp, bl)) (-1, -1.) loads
  in
  let host = Assignment.switch_for (Deployment.assignment d') hot_pid in
  check (Alcotest.list Alcotest.int) "hot partition isolated" [ hot_pid ]
    (Assignment.partitions_of (Deployment.assignment d') host);
  (* semantics intact after the automated move *)
  let rng = Prng.create 8 in
  let probes = List.init 150 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "still faithful" true (Deployment.semantically_equal d' probes)

let suite =
  [
    ( "channel",
      [
        tc "latency" test_channel_latency;
        tc "order and counters" test_channel_order_and_counters;
      ] );
    ( "switch control",
      [
        tc "echo / barrier" test_handle_echo_barrier;
        tc "stats from live counters" test_handle_stats;
        tc "cache flow-mods" test_handle_flow_mod;
        tc "duplicate xids suppressed" test_xid_dedup;
        tc "straggler add merges after barrier" test_straggler_add_merges_after_barrier;
      ] );
    ( "control plane",
      [
        tc "healthy switches stay alive" test_echo_keeps_alive;
        tc "failure detection triggers failover" test_failure_detection_and_failover;
        tc "stats aggregate to origin rules" test_stats_aggregation;
        tc "targeted cache invalidation" test_targeted_invalidation;
        tc "control overhead counted" test_control_overhead_counted;
        tc "push deployment over channels" test_push_deployment;
        tc "partition transfer codec" test_partition_transfer_codec;
        tc "automatic load rebalance" test_auto_rebalance;
      ] );
    ( "reliability",
      [
        tc "lossy push converges exactly" test_lossy_push_converges;
        tc "crash/restart resyncs state" test_crash_restart_resync;
        tc "premature death declaration recovers" test_premature_death_recovers;
        tc "degraded packet-in answered NOX-style" test_degraded_packet_in_answered;
      ] );
  ]

(* The congestion model: virtual-clock port queues, drop-tail, ECN,
   credit backpressure — and the differential guarantee that with the
   model off (or enabled but unbounded) every plane behaves exactly as
   the legacy infinite-buffer code did. *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

(* A 1.2e8 bit/s link serializes the default 12-kbit packet in 100 µs —
   round numbers for the virtual-clock arithmetic below. *)
let link = { Topology.src = 0; dst = 1; latency = 1e-4; bandwidth = 1.2e8 }
let ser = 1e-4

(* --- topology: bandwidth is now a validated, meaningful field --- *)

let test_serialization_delay () =
  check (Alcotest.float 1e-12) "bits / bandwidth" ser
    (Topology.serialization_delay link ~bits:12_000);
  check (Alcotest.float 1e-12) "zero bits, zero delay" 0.
    (Topology.serialization_delay link ~bits:0);
  try
    ignore (Topology.serialization_delay link ~bits:(-1));
    Alcotest.fail "negative bits accepted"
  with Invalid_argument _ -> ()

let test_bandwidth_validated () =
  let mk bandwidth =
    Topology.create ~nodes:2 [ { Topology.src = 0; dst = 1; latency = 1.; bandwidth } ]
  in
  ignore (mk 1e9);
  List.iter
    (fun bw ->
      try
        ignore (mk bw);
        Alcotest.failf "bandwidth %f accepted" bw
      with Invalid_argument _ -> ())
    [ 0.; -1e9; Float.nan ]

(* --- config validation --- *)

let test_validate () =
  let reject c =
    try
      Congestion.validate c;
      Alcotest.fail "invalid config accepted"
    with Invalid_argument _ -> ()
  in
  Congestion.validate Congestion.default;
  reject { Congestion.default with packet_bits = 0 };
  reject { Congestion.default with buffer_capacity = Some (-1) };
  reject { Congestion.default with ecn_threshold = Some (-1) };
  reject { Congestion.default with mode = Congestion.Credit; credit_pool = 0 };
  reject
    { Congestion.default with
      mode = Congestion.Credit; credit_pool = 8; credit_low_water = 8 };
  (* low-water only constrains Credit mode *)
  Congestion.validate { Congestion.default with credit_pool = 8; credit_low_water = 8 }

let test_enabled () =
  check Alcotest.bool "default off" false (Congestion.enabled Congestion.default);
  List.iter
    (fun c -> check Alcotest.bool "any knob enables" true (Congestion.enabled c))
    [
      { Congestion.default with model_bandwidth = true };
      { Congestion.default with buffer_capacity = Some 10 };
      { Congestion.default with ecn_threshold = Some 10 };
      { Congestion.default with mode = Congestion.Credit };
    ]

(* --- virtual-clock port queues --- *)

let test_transit_books_serialization () =
  let c = Congestion.create { Congestion.default with model_bandwidth = true } in
  (match Congestion.transit c ~now:0. ~from:0 link with
  | `Forward (d, false) -> check (Alcotest.float 1e-12) "idle port: ser only" ser d
  | _ -> Alcotest.fail "expected unmarked forward");
  (match Congestion.transit c ~now:0. ~from:0 link with
  | `Forward (d, false) ->
      check (Alcotest.float 1e-12) "back-to-back: wait + ser" (2. *. ser) d
  | _ -> Alcotest.fail "expected unmarked forward");
  (* the head packet is on the wire; the second occupies the one slot *)
  check Alcotest.int "one queued" 1 (Congestion.depth c ~now:0. ~from:0 ~to_:1);
  check Alcotest.int "drains with time" 0 (Congestion.depth c ~now:(2. *. ser) ~from:0 ~to_:1);
  (* the reverse direction is a distinct port *)
  check Alcotest.int "directed ports" 0 (Congestion.depth c ~now:0. ~from:1 ~to_:0);
  let s = Congestion.stats c in
  check Alcotest.int "transits" 2 s.Congestion.transits;
  check Alcotest.int "no drops" 0 s.Congestion.drops;
  Congestion.reset c;
  check Alcotest.int "reset clears backlog" 0 (Congestion.depth c ~now:0. ~from:0 ~to_:1);
  check Alcotest.int "reset clears stats" 0 (Congestion.stats c).Congestion.transits

let test_drop_tail () =
  let c =
    Congestion.create
      { Congestion.default with model_bandwidth = true; buffer_capacity = Some 1 }
  in
  (* slot 0: straight to the wire; slot 1: the single buffer slot;
     slot 2: shed *)
  (match Congestion.transit c ~now:0. ~from:0 link with
  | `Forward _ -> ()
  | `Drop -> Alcotest.fail "idle port dropped");
  (match Congestion.transit c ~now:0. ~from:0 link with
  | `Forward _ -> ()
  | `Drop -> Alcotest.fail "buffer slot dropped");
  (match Congestion.transit c ~now:0. ~from:0 link with
  | `Drop -> ()
  | `Forward _ -> Alcotest.fail "over-capacity packet forwarded");
  let s = Congestion.stats c in
  check Alcotest.int "one drop" 1 s.Congestion.drops;
  check Alcotest.int "peak depth saw the full buffer" 1 s.Congestion.peak_depth;
  (* a dropped packet books no transmitter time *)
  check Alcotest.int "backlog unchanged by the drop" 1
    (Congestion.depth c ~now:0. ~from:0 ~to_:1)

let test_ecn_marking () =
  let c =
    Congestion.create
      { Congestion.default with model_bandwidth = true; ecn_threshold = Some 1 }
  in
  let marked () =
    match Congestion.transit c ~now:0. ~from:0 link with
    | `Forward (_, m) -> m
    | `Drop -> Alcotest.fail "unbounded buffer dropped"
  in
  check Alcotest.bool "idle port unmarked" false (marked ());
  check Alcotest.bool "below threshold unmarked" false (marked ());
  check Alcotest.bool "at threshold marked" true (marked ());
  check Alcotest.int "one mark" 1 (Congestion.stats c).Congestion.marks

let test_disabled_is_free () =
  (* enabled-but-unbounded: machinery active, behaviour invisible *)
  let c = Congestion.create { Congestion.default with ecn_threshold = Some max_int } in
  for _ = 1 to 5 do
    match Congestion.transit c ~now:0. ~from:0 link with
    | `Forward (d, m) ->
        check (Alcotest.float 0.) "no serialization when bandwidth unmodelled" 0. d;
        check Alcotest.bool "never marked" false m
    | `Drop -> Alcotest.fail "unbounded buffer dropped"
  done;
  check Alcotest.int "no backlog without serialization" 0
    (Congestion.depth c ~now:0. ~from:0 ~to_:1)

(* --- server edge cases (the DES side of the same buffer semantics) --- *)

let test_server_zero_capacity () =
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:0 in
  let served = ref 0 in
  Engine.schedule e ~at:0. (fun () ->
      (* idle server: straight into service, no backlog slot needed *)
      check Alcotest.bool "accepted while idle" true
        (Server.submit s (fun () -> incr served));
      (* busy server with zero backlog: must bounce *)
      check Alcotest.bool "rejected while busy" false
        (Server.submit s (fun () -> incr served)));
  Engine.run e;
  check Alcotest.int "one served" 1 !served;
  check Alcotest.int "accepted" 1 (Server.accepted s);
  check Alcotest.int "rejected" 1 (Server.rejected s);
  check Alcotest.int "completed" 1 (Server.completed s)

let test_server_fifo_among_simultaneous () =
  (* submissions from distinct events at the same timestamp must be
     served in submission order — the engine's FIFO tie-break carries
     through the server's queue *)
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:10 in
  let order = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~at:1. (fun () ->
        ignore (Server.submit s (fun () -> order := i :: !order)))
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO service order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order);
  check (Alcotest.float 1e-9) "five service times" 6. (Engine.now e)

let test_server_rejection_accounting () =
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:1 in
  Engine.schedule e ~at:0. (fun () ->
      ignore (Server.submit s (fun () -> ()));
      ignore (Server.submit s (fun () -> ()));
      let before = Server.queue_length s in
      check Alcotest.bool "third bounces" false (Server.submit s (fun () -> ()));
      (* a rejection must not perturb the queue or the accepted count *)
      check Alcotest.int "backlog untouched" before (Server.queue_length s);
      check Alcotest.int "accepted untouched" 2 (Server.accepted s));
  Engine.run e;
  check Alcotest.int "rejected" 1 (Server.rejected s);
  check Alcotest.int "completed" 2 (Server.completed s)

(* --- dataplane walk under congestion --- *)

let policy =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 4);
      (0, [], Action.Drop);
    ]

let build ?(congestion = Congestion.default) () =
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with k = 4; congestion }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  (d, Routing.compute (Deployment.topology d))

let test_walk_queue_full () =
  let d, routing = build () in
  let switch = Deployment.switch d in
  (* zero buffers: any busy port sheds.  The first packet books every
     port on its path; the second, walked at the same instant, dies at
     the first busy one. *)
  let c =
    Congestion.create
      { Congestion.default with model_bandwidth = true; buffer_capacity = Some 0 }
  in
  let r1 = Dataplane.packet ~congestion:c ~routing ~switch ~now:0. ~ingress:0 (h 2 0) in
  check Alcotest.bool "first delivered" true r1.Dataplane.delivered;
  check (Alcotest.option Alcotest.reject) "no drop reason" None
    (Option.map (fun _ -> ()) r1.Dataplane.drop_reason);
  let r2 = Dataplane.packet ~congestion:c ~routing ~switch ~now:0. ~ingress:0 (h 3 0) in
  check Alcotest.bool "second shed" false r2.Dataplane.delivered;
  check Alcotest.bool "blames the buffer" true
    (r2.Dataplane.drop_reason = Some Dataplane.Queue_full)

let test_walk_queueing_latency_and_marks () =
  let d, routing = build () in
  let switch = Deployment.switch d in
  let c =
    Congestion.create
      { Congestion.default with model_bandwidth = true; ecn_threshold = Some 0 }
  in
  let r1 = Dataplane.packet ~congestion:c ~routing ~switch ~now:0. ~ingress:0 (h 2 0) in
  let r2 = Dataplane.packet ~congestion:c ~routing ~switch ~now:0. ~ingress:0 (h 3 0) in
  check Alcotest.bool "first sees idle ports, unmarked" false r1.Dataplane.marked;
  check Alcotest.bool "second queues behind it, marked" true r2.Dataplane.marked;
  check Alcotest.bool "queueing shows up in latency" true
    (r2.Dataplane.latency > r1.Dataplane.latency);
  check Alcotest.bool "both still delivered" true
    (r1.Dataplane.delivered && r2.Dataplane.delivered)

let test_walk_ttl_reason () =
  let d, routing = build () in
  let r =
    Dataplane.packet
      ~config:{ Dataplane.default_config with max_ttl = 1 }
      ~routing ~switch:(Deployment.switch d) ~now:0. ~ingress:0 (h 2 0)
  in
  check Alcotest.bool "not delivered" false r.Dataplane.delivered;
  check Alcotest.bool "blames the hop budget" true
    (r.Dataplane.drop_reason = Some Dataplane.Ttl)

(* --- the differential guarantee --- *)

(* Enabled-but-unbounded congestion state: the walk must produce exactly
   the legacy result — action, latency, trace, everything. *)
let test_walk_differential () =
  let unbounded = { Congestion.default with ecn_threshold = Some max_int } in
  let rng = Prng.create 7 in
  for _ = 1 to 40 do
    let hdr = h (Prng.int rng 256) (Prng.int rng 256) in
    let d1, routing = build () in
    let d2, _ = build () in
    let plain = Dataplane.packet ~routing ~switch:(Deployment.switch d1) ~now:0. ~ingress:0 hdr in
    let c = Congestion.create unbounded in
    let cong =
      Dataplane.packet ~congestion:c ~routing ~switch:(Deployment.switch d2) ~now:0.
        ~ingress:0 hdr
    in
    if plain <> cong then Alcotest.fail "unbounded congestion changed the walk"
  done

let incast_topology =
  Topology.create ~nodes:4
    (List.init 3 (fun i ->
         { Topology.src = 0; dst = i + 1; latency = 1e-4; bandwidth = 1.2e8 }))

let incast_policy = Classifier.of_specs s2 [ (1, [], Action.Forward 3) ]

let incast_deployment congestion =
  Deployment.build
    ~config:{ Deployment.default_config with cache_capacity = 0; congestion }
    ~policy:incast_policy ~topology:incast_topology ~authority_ids:[ 1 ] ()

(* 2000 distinct single-packet flows at 40k flows/s into an authority
   that drains 10k misses/s — heavy overload through node 0's port. *)
let incast_flows () =
  List.init 2000 (fun i ->
      {
        Traffic.flow_id = i;
        header = h (i mod 256) (i / 256);
        ingress = 2;
        start = float_of_int i *. 2.5e-5;
        packets = 1;
        interval = 1e-4;
      })

let incast_timing = { Flowsim.default_timing with authority_service = 1e-4 }

let test_flowsim_differential () =
  let r1 =
    Flowsim.run_difane ~timing:incast_timing
      (incast_deployment Congestion.default)
      (incast_flows ())
  in
  let r2 =
    Flowsim.run_difane ~timing:incast_timing
      (incast_deployment { Congestion.default with ecn_threshold = Some max_int })
      (incast_flows ())
  in
  if r1 <> r2 then Alcotest.fail "unbounded congestion changed the simulation"

(* --- graceful degradation: credit beats drop-tail under overload --- *)

let test_credit_vs_drop_tail () =
  let base =
    { Congestion.default with
      model_bandwidth = true;
      buffer_capacity = Some 16;
      credit_pool = 16;
      credit_low_water = 4;
    }
  in
  let run mode =
    Flowsim.run_difane ~timing:incast_timing
      (incast_deployment { base with Congestion.mode })
      (incast_flows ())
  in
  let dt = run Congestion.Drop_tail in
  let cr = run Congestion.Credit in
  check Alcotest.bool "drop-tail sheds at port buffers" true (dt.Flowsim.queue_drops > 0);
  check Alcotest.bool "drop-tail loses flows" true (dt.Flowsim.dropped_flows > 0);
  check Alcotest.bool "credit backpressures instead" true (cr.Flowsim.backpressured > 0);
  check Alcotest.bool "credit loses fewer flows" true
    (cr.Flowsim.dropped_flows < dt.Flowsim.dropped_flows);
  check Alcotest.bool "credit completes more flows" true
    (cr.Flowsim.completed_flows > dt.Flowsim.completed_flows)

(* Walk-plane backpressure: a saturated authority port makes Credit-mode
   injects fall back to the controller path, separately accounted. *)
let test_inject_backpressure_accounting () =
  let congestion =
    { Congestion.default with
      model_bandwidth = true;
      mode = Congestion.Credit;
      credit_pool = 2;
      credit_low_water = 1;
    }
  in
  let d = incast_deployment congestion in
  for i = 0 to 9 do
    let o = Deployment.inject d ~now:0. ~ingress:2 (h i 0) in
    (* the fallback still answers from the policy *)
    check action "policy action preserved" (Action.Forward 3) o.Deployment.action
  done;
  check Alcotest.bool "backpressured misses counted" true
    (Deployment.backpressured_misses d > 0);
  check Alcotest.int "failure-degraded stays separate" 0 (Deployment.degraded_misses d)

let suite =
  [
    ( "congestion-model",
      [
        tc "serialization delay" test_serialization_delay;
        tc "bandwidth validated" test_bandwidth_validated;
        tc "config validation" test_validate;
        tc "enabled detection" test_enabled;
        tc "virtual-clock booking" test_transit_books_serialization;
        tc "drop-tail" test_drop_tail;
        tc "ECN marking" test_ecn_marking;
        tc "enabled-but-unbounded is free" test_disabled_is_free;
      ] );
    ( "congestion-server",
      [
        tc "zero-capacity queue" test_server_zero_capacity;
        tc "FIFO among simultaneous arrivals" test_server_fifo_among_simultaneous;
        tc "rejection accounting" test_server_rejection_accounting;
      ] );
    ( "congestion-dataplane",
      [
        tc "queue-full drop reason" test_walk_queue_full;
        tc "queueing latency and ECN marks" test_walk_queueing_latency_and_marks;
        tc "ttl drop reason" test_walk_ttl_reason;
      ] );
    ( "congestion-differential",
      [
        tc "walk unchanged when unbounded" test_walk_differential;
        tc "flowsim unchanged when unbounded" test_flowsim_differential;
      ] );
    ( "congestion-degradation",
      [
        tc "credit beats drop-tail under overload" test_credit_vs_drop_tail;
        tc "inject backpressure accounting" test_inject_backpressure_accounting;
      ] );
  ]

(* Cache-rule aggregation: merge legality, cover-set dependency safety,
   the rank-priority and expiry-heap regressions, and the differential
   property the whole layer rests on — aggregation must never change
   what happens to a packet. *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]
let p f1 = Pred.of_strings s2 [ ("f1", f1) ]

let frag_meta ?(pid = 0) ~origin ~rank pred =
  {
    Switch.pid;
    kind = Switch.Fragment;
    group = None;
    parts = [ { Switch.part_origin = origin; part_rank = rank; part_pred = pred } ];
  }

(* ---- buddy_union: the merge's algebraic core ---- *)

let test_buddy_union () =
  (* adjacent on one field: exact union *)
  (match Pred.buddy_union (p "00000000") (p "00000001") with
  | Some u -> check pred "one-bit buddies" (p "0000000x") u
  | None -> Alcotest.fail "buddies did not merge");
  (* two bits apart: union is not a rectangle *)
  check Alcotest.bool "two bits apart" true
    (Pred.buddy_union (p "00000000") (p "00000011") = None);
  (* identical predicates are not buddies (zero differing fields) *)
  check Alcotest.bool "identical" true
    (Pred.buddy_union (p "0000000x") (p "0000000x") = None);
  (* differing on two fields: no exact union *)
  let a = Pred.of_strings s2 [ ("f1", "00000000"); ("f2", "00000000") ] in
  let b = Pred.of_strings s2 [ ("f1", "00000001"); ("f2", "00000001") ] in
  check Alcotest.bool "two fields differ" true (Pred.buddy_union a b = None)

(* ---- merge legality at the install layer ---- *)

let fresh ?(capacity = 8) ?(config = Aggregate.enabled_default) () =
  (Switch.create ~id:0 ~cache_capacity:capacity, Aggregate.create config)

let install1 t sw ~now rule meta = ignore (Aggregate.install t sw ~now [ (rule, meta) ])

let test_fragments_merge () =
  let sw, t = fresh () in
  let r1 = Rule.make ~id:100 ~priority:1 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:1 (p "00000001") (Action.Forward 1) in
  install1 t sw ~now:0. r1 (frag_meta ~origin:10 ~rank:1 r1.Rule.pred);
  install1 t sw ~now:0. r2 (frag_meta ~origin:11 ~rank:1 r2.Rule.pred);
  check Alcotest.int "one resident entry" 1 (Tcam.occupancy (Switch.cache sw));
  check Alcotest.int "one merge" 1 (Aggregate.stats t).Aggregate.merges;
  (* the merged entry covers both operands and keeps both origins *)
  let e = List.hd (Tcam.entries (Switch.cache sw)) in
  check pred "union pred" (p "0000000x") e.Tcam.rule.Rule.pred;
  check (Alcotest.list Alcotest.int) "origin set" [ 10; 11 ]
    (Switch.origins_of_cache_rule sw e.Tcam.rule.Rule.id)

let test_no_merge_across_actions () =
  let sw, t = fresh () in
  let r1 = Rule.make ~id:100 ~priority:1 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:1 (p "00000001") (Action.Drop) in
  install1 t sw ~now:0. r1 (frag_meta ~origin:10 ~rank:1 r1.Rule.pred);
  install1 t sw ~now:0. r2 (frag_meta ~origin:11 ~rank:1 r2.Rule.pred);
  check Alcotest.int "both resident" 2 (Tcam.occupancy (Switch.cache sw));
  check Alcotest.int "no merges" 0 (Aggregate.stats t).Aggregate.merges

let test_no_merge_across_pids () =
  let sw, t = fresh () in
  let r1 = Rule.make ~id:100 ~priority:1 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:1 (p "00000001") (Action.Forward 1) in
  install1 t sw ~now:0. r1 (frag_meta ~pid:0 ~origin:10 ~rank:1 r1.Rule.pred);
  install1 t sw ~now:0. r2 (frag_meta ~pid:1 ~origin:11 ~rank:1 r2.Rule.pred);
  check Alcotest.int "both resident" 2 (Tcam.occupancy (Switch.cache sw))

let test_fragment_merge_takes_max_rank () =
  let sw, t = fresh () in
  let r1 = Rule.make ~id:100 ~priority:1 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:3 (p "00000001") (Action.Forward 1) in
  install1 t sw ~now:0. r1 (frag_meta ~origin:10 ~rank:1 r1.Rule.pred);
  install1 t sw ~now:0. r2 (frag_meta ~origin:11 ~rank:3 r2.Rule.pred);
  let e = List.hd (Tcam.entries (Switch.cache sw)) in
  check Alcotest.int "merged at max rank" 3 e.Tcam.rule.Rule.priority

let test_covers_never_merge_across_groups () =
  (* two cover-set members from different groups, equal rank, buddy
     predicates: merging would entangle two atomically-evicted sets *)
  let sw, t = fresh () in
  let meta gid id pred =
    {
      Switch.pid = 0;
      kind = Switch.Cover;
      group = Some (gid, [ id ]);
      parts = [ { Switch.part_origin = id; part_rank = 2; part_pred = pred } ];
    }
  in
  let r1 = Rule.make ~id:100 ~priority:2 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:2 (p "00000001") (Action.Forward 1) in
  install1 t sw ~now:0. r1 (meta 900 100 r1.Rule.pred);
  install1 t sw ~now:0. r2 (meta 901 101 r2.Rule.pred);
  check Alcotest.int "both resident" 2 (Tcam.occupancy (Switch.cache sw));
  check Alcotest.int "no merges" 0 (Aggregate.stats t).Aggregate.merges

let test_subsumed_install_suppressed () =
  let sw, t = fresh () in
  let broad = Rule.make ~id:100 ~priority:2 (p "0000000x") (Action.Forward 1) in
  let narrow = Rule.make ~id:101 ~priority:1 (p "00000000") (Action.Forward 1) in
  install1 t sw ~now:0. broad (frag_meta ~origin:10 ~rank:2 broad.Rule.pred);
  install1 t sw ~now:0. narrow (frag_meta ~origin:10 ~rank:1 narrow.Rule.pred);
  check Alcotest.int "one resident entry" 1 (Tcam.occupancy (Switch.cache sw));
  check Alcotest.int "suppressed" 1 (Aggregate.stats t).Aggregate.suppressed

let test_disabled_installs_plainly () =
  let sw, t = fresh ~config:Aggregate.default () in
  let r1 = Rule.make ~id:100 ~priority:1 (p "00000000") (Action.Forward 1) in
  let r2 = Rule.make ~id:101 ~priority:1 (p "00000001") (Action.Forward 1) in
  install1 t sw ~now:0. r1 (frag_meta ~origin:10 ~rank:1 r1.Rule.pred);
  install1 t sw ~now:0. r2 (frag_meta ~origin:11 ~rank:1 r2.Rule.pred);
  check Alcotest.int "both resident" 2 (Tcam.occupancy (Switch.cache sw));
  check Alcotest.int "no merges" 0 (Aggregate.stats t).Aggregate.merges

(* ---- satellite 1 regression: cache priorities must encode table rank ---- *)

(* The chain where naive caching is unsafe: a narrow drop over a broad
   accept (same shape as test_splice.chained). *)
let chained =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 9);
      (10, [ ("f1", "000000xx") ], Action.Forward 1);
      (0, [], Action.Drop);
    ]

let test_rank_priorities_pick_the_winner () =
  (* Cover-style entries reproduce authority rules verbatim, so the
     narrow drop and the broad accept OVERLAP once cached.  Under the
     old constant cache priority (always 0) the tie broke toward the
     older entry — the broad accept installed first — and the drop rule
     was bypassed.  Rank-based priorities must pick the table's winner
     regardless of install order. *)
  let top = Option.get (Classifier.find chained 0) in
  let broad = Option.get (Classifier.find chained 2) in
  let rank_top = Splice.cache_priority chained top in
  let rank_broad = Splice.cache_priority chained broad in
  check Alcotest.int "top rank (4-rule table)" 4 rank_top;
  check Alcotest.int "broad rank" 2 rank_broad;
  let sw = Switch.create ~id:0 ~cache_capacity:8 in
  (* broad first => lower cache id => the old tie-break favoured it *)
  ignore
    (Switch.install_cache_rule ~origin_id:broad.Rule.id sw ~now:0.
       (Rule.make ~id:1 ~priority:rank_broad broad.Rule.pred broad.Rule.action));
  ignore
    (Switch.install_cache_rule ~origin_id:top.Rule.id sw ~now:0.
       (Rule.make ~id:2 ~priority:rank_top top.Rule.pred top.Rule.action));
  match Switch.process sw ~now:1. (h 1 0) with
  | Switch.Local (a, Switch.Cache_bank) ->
      check action "narrow drop wins" Action.Drop a
  | _ -> Alcotest.fail "expected a cache-bank decision"

(* ---- satellite 3 regression: replace-then-expire staleness ---- *)

let test_replace_then_expire () =
  let tcam = Tcam.create ~capacity:4 in
  let r = Rule.make ~id:1 ~priority:0 (p "00000000") Action.Drop in
  (* short-lived install, then a same-id replacement with a long lease:
     the heap still holds the OLD deadline; popping it must not expire
     the fresh entry *)
  (match Tcam.insert ~idle_timeout:0.1 tcam ~now:0. r with
  | `Ok -> ()
  | _ -> Alcotest.fail "first insert");
  (match Tcam.insert ~idle_timeout:10. tcam ~now:0.05 r with
  | `Replaced _ -> ()
  | _ -> Alcotest.fail "expected same-id replacement");
  check Alcotest.int "no premature expiry" 0
    (List.length (Tcam.expire_entries tcam ~now:0.2));
  check Alcotest.bool "entry survives its stale deadline" true (Tcam.mem tcam 1);
  (* the hard-timeout lane has the same staleness hazard *)
  let r2 = Rule.make ~id:2 ~priority:0 (p "00000001") Action.Drop in
  ignore (Tcam.insert ~hard_timeout:0.1 tcam ~now:0. r2);
  ignore (Tcam.insert ~hard_timeout:10. tcam ~now:0.05 r2);
  check Alcotest.int "no premature hard expiry" 0
    (List.length (Tcam.expire_entries tcam ~now:0.2));
  check Alcotest.bool "hard-lease entry survives" true (Tcam.mem tcam 2);
  (* both leases do end *)
  check Alcotest.int "eventual expiry" 2
    (List.length (Tcam.expire_entries tcam ~now:11.))

let test_touch_defers_idle_expiry () =
  let tcam = Tcam.create ~capacity:4 in
  let r = Rule.make ~id:3 ~priority:0 (p "00000010") Action.Drop in
  ignore (Tcam.insert ~idle_timeout:0.1 tcam ~now:0. r);
  check Alcotest.bool "touch live entry" true (Tcam.touch tcam ~now:0.09 3);
  check Alcotest.int "refreshed, not expired" 0
    (List.length (Tcam.expire_entries tcam ~now:0.15));
  check Alcotest.int "idles out after the refresh" 1
    (List.length (Tcam.expire_entries tcam ~now:0.25));
  check Alcotest.bool "touch dead entry" false (Tcam.touch tcam ~now:0.3 3)

(* ---- cover sets: dependency safety and group atomicity ---- *)

let cover_setup ?(capacity = 8) () =
  let part = Partitioner.compute chained ~k:2 in
  let auth = Switch.create ~id:7 ~cache_capacity:capacity in
  let ingress = Switch.create ~id:0 ~cache_capacity:capacity in
  let prules = Partitioner.partition_rules part ~assignment:(fun _ -> 7) in
  Switch.install_partition_rules ingress prules;
  Switch.install_partition_rules auth prules;
  List.iter (fun pa -> Switch.install_authority auth pa) part.Partitioner.partitions;
  (ingress, auth, Aggregate.create Aggregate.enabled_default)

let serve_covers ?idle_timeout (ingress, auth, t) ~now hdr =
  let reply = Option.get (Switch.serve_miss ~cover_limit:4 auth ~now hdr) in
  ignore (Aggregate.install ?idle_timeout t ingress ~now reply.Switch.installs);
  reply

let test_cover_set_preserves_dependencies () =
  let ((ingress, _, _) as env) = cover_setup () in
  let reply = serve_covers env ~now:0. (h 2 0) in
  (* broad accept depends on the narrow drop and the f2-range rule *)
  check Alcotest.int "cover set size" 3 (List.length reply.Switch.installs);
  check Alcotest.int "all members resident" 3 (Tcam.occupancy (Switch.cache ingress));
  (* the covered headers decide exactly as the policy does — including
     the header owned by the HIGHER-priority drop the cover set carries *)
  (match Switch.process ingress ~now:1. (h 2 0) with
  | Switch.Local (a, Switch.Cache_bank) -> check action "origin header" (Action.Forward 1) a
  | _ -> Alcotest.fail "expected cache hit on the broad member");
  match Switch.process ingress ~now:1. (h 1 0) with
  | Switch.Local (a, Switch.Cache_bank) -> check action "dependency header" Action.Drop a
  | _ -> Alcotest.fail "expected cache hit on the high-rank member"

let test_cover_group_dies_atomically () =
  let ((ingress, _, _) as env) = cover_setup () in
  let reply = serve_covers env ~now:0. (h 2 0) in
  (* lose one member behind the cache's back, then sweep *)
  let victim, _ = List.hd reply.Switch.installs in
  ignore (Tcam.remove (Switch.cache ingress) victim.Rule.id);
  ignore (Switch.drop_cover_orphans ingress ~now:1.);
  check Alcotest.int "whole group scrubbed" 0 (Tcam.occupancy (Switch.cache ingress))

let test_cover_group_stays_warm_together () =
  let ((ingress, _, _) as env) = cover_setup () in
  ignore (serve_covers env ~idle_timeout:0.1 ~now:0. (h 2 0));
  (* only the broad member absorbs traffic; its hits must keep the unhit
     high-rank dependencies warm *)
  ignore (Switch.process ingress ~now:0.09 (h 2 0));
  ignore (Switch.process ingress ~now:0.18 (h 2 0));
  ignore (Switch.expire_cache ingress ~now:0.25);
  check Alcotest.int "group refreshed as one unit" 3
    (Tcam.occupancy (Switch.cache ingress));
  (* once the traffic stops the whole group idles out together *)
  ignore (Switch.expire_cache ingress ~now:1.);
  check Alcotest.int "group expires as one unit" 0
    (Tcam.occupancy (Switch.cache ingress))

let test_cover_group_too_big_for_tcam () =
  (* capacity below the set size: members evict each other mid-batch;
     the batch-boundary sweep must leave no partial group behind *)
  let ((ingress, _, _) as env) = cover_setup ~capacity:2 () in
  ignore (serve_covers env ~now:0. (h 2 0));
  check Alcotest.int "no partial cover set survives" 0
    (Tcam.occupancy (Switch.cache ingress))

(* ---- the differential property: aggregation never changes forwarding ---- *)

(* Random chain policies over the tiny schema, closed so every header
   matches; egresses stay within the 3-node line topology below. *)
let gen_policy =
  let open QCheck2.Gen in
  let* n = int_range 3 8 in
  let* specs = list_repeat n (pair (int_bound 10) gen_pred_tiny2) in
  let rules =
    List.mapi
      (fun i (pr, pd) ->
        let act =
          match i mod 3 with
          | 0 -> Action.Drop
          | 1 -> Action.Forward 1
          | _ -> Action.Forward 2
        in
        Rule.make ~id:i ~priority:pr pd act)
      specs
  in
  let rules = Rule.make ~id:n ~priority:(-1) (Pred.any s2) (Action.Forward 1) :: rules in
  return (Classifier.create s2 rules)

(* A stream step: a header plus an op selector that occasionally expires,
   flushes or invalidates BOTH arms identically before injecting. *)
let gen_case =
  let open QCheck2.Gen in
  triple gen_policy (int_range 2 8)
    (list_size (int_range 10 40) (pair gen_header_tiny2 (int_bound 15)))

let prop_aggregation_preserves_forwarding =
  qt ~count:400 "aggregated deployment forwards identically to plain"
    gen_case
    (fun (policy, capacity, stream) ->
      let arm aggregation =
        let config =
          {
            Deployment.default_config with
            k = 4;
            cache_capacity = capacity;
            cache_idle_timeout = Some 0.05;
            aggregation;
          }
        in
        Deployment.build ~config ~policy ~topology:(Topology.line 3 ())
          ~authority_ids:[ 1 ] ()
      in
      let plain = arm Aggregate.default in
      let agg = arm Aggregate.enabled_default in
      let step = ref 0 in
      let ok =
        List.for_all
          (fun (hdr, op) ->
            let now = float_of_int !step /. 50. in
            incr step;
            (match op with
            | 0 ->
                ignore (Deployment.expire_caches plain ~now);
                ignore (Deployment.expire_caches agg ~now)
            | 1 ->
                Deployment.flush_caches plain;
                Deployment.flush_caches agg
            | 2 ->
                let origins o = o mod 2 = 0 in
                ignore (Deployment.invalidate_origins ~now plain ~origins);
                ignore (Deployment.invalidate_origins ~now agg ~origins)
            | _ -> ());
            let o0 = Deployment.inject plain ~now ~ingress:0 hdr in
            let o1 = Deployment.inject agg ~now ~ingress:0 hdr in
            Action.equal o0.Deployment.action o1.Deployment.action)
          stream
      in
      (* and with the caches warm, both arms still agree with the policy *)
      let probes = List.map fst stream in
      ok
      && Deployment.semantically_equal plain probes
      && Deployment.semantically_equal agg probes)

let suite =
  [
    ( "aggregate",
      [
        tc "buddy_union algebra" test_buddy_union;
        tc "adjacent same-action fragments merge" test_fragments_merge;
        tc "no merge across actions" test_no_merge_across_actions;
        tc "no merge across partitions" test_no_merge_across_pids;
        tc "fragment merge takes the max rank" test_fragment_merge_takes_max_rank;
        tc "covers never merge across groups" test_covers_never_merge_across_groups;
        tc "subsumed install suppressed" test_subsumed_install_suppressed;
        tc "disabled config installs plainly" test_disabled_installs_plainly;
        tc "rank priorities pick the winner (regression)"
          test_rank_priorities_pick_the_winner;
        tc "replace-then-expire keeps the fresh lease (regression)"
          test_replace_then_expire;
        tc "touch defers idle expiry" test_touch_defers_idle_expiry;
        tc "cover set preserves dependencies" test_cover_set_preserves_dependencies;
        tc "cover group dies atomically" test_cover_group_dies_atomically;
        tc "cover group stays warm together" test_cover_group_stays_warm_together;
        tc "oversized cover group leaves no partial set"
          test_cover_group_too_big_for_tcam;
        prop_aggregation_preserves_forwarding;
      ] );
  ]

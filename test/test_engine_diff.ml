open Test_util

(* Differential tests: the packed structure-of-arrays Engine against the
   legacy closure-heap Engine_legacy, which is kept as the reference
   semantics.  Both replay the same randomized schedule and must dispatch
   the identical (time, id) trace — including FIFO order among
   equal-timestamp ties and events posted from inside handlers.  Event
   ids are allocated at dispatch time, so any divergence in order shows
   up as diverging ids, not just diverging times. *)

let exec ~schedule ~run ~now evs =
  let log = ref [] in
  let id = ref 0 in
  List.iter
    (fun (ti, nested, di) ->
      let t = float_of_int ti *. 0.5 in
      incr id;
      let myid = !id in
      schedule ~at:t (fun () ->
          log := (now (), myid) :: !log;
          (* nested posts share one delay, so they tie with each other —
             and with a sibling's nested posts when delays collide *)
          for _ = 1 to nested do
            incr id;
            let nid = !id in
            schedule
              ~at:(now () +. (float_of_int di *. 0.25))
              (fun () -> log := (now (), nid) :: !log)
          done))
    evs;
  run ();
  List.rev !log

let packed_trace ?until evs =
  let e = Engine.create () in
  exec
    ~schedule:(fun ~at f -> Engine.schedule e ~at f)
    ~run:(fun () -> Engine.run ?until e)
    ~now:(fun () -> Engine.now e)
    evs

let legacy_trace ?until evs =
  let e = Engine_legacy.create () in
  exec
    ~schedule:(fun ~at f -> Engine_legacy.schedule e ~at f)
    ~run:(fun () -> Engine_legacy.run ?until e)
    ~now:(fun () -> Engine_legacy.now e)
    evs

(* times drawn from ten half-second slots so equal-timestamp collisions
   are common, not corner cases *)
let gen_schedule =
  QCheck2.Gen.(
    list_size (int_range 1 80) (triple (int_bound 9) (int_bound 3) (int_bound 4)))

let prop_differential =
  qt ~count:120 "packed engine replays the legacy trace event-for-event"
    gen_schedule
    (fun evs -> packed_trace evs = legacy_trace evs)

let prop_differential_until =
  qt ~count:60 "identical traces under a run horizon" gen_schedule (fun evs ->
      packed_trace ~until:2.25 evs = legacy_trace ~until:2.25 evs)

let test_all_ties () =
  (* worst case for FIFO ties: every event (and every nested post) lands
     on the same timestamp *)
  let evs = List.init 50 (fun _ -> (4, 2, 0)) in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.) Alcotest.int))
    "all-equal timestamps dispatch in posting order" (legacy_trace evs)
    (packed_trace evs)

let test_resume_after_until () =
  (* splitting one run at a horizon must not reorder the tail *)
  let evs = [ (1, 2, 3); (3, 1, 1); (3, 0, 0); (7, 2, 2); (2, 3, 0) ] in
  let split =
    let e = Engine.create () in
    let log = ref [] in
    let id = ref 0 in
    let rec sched ~at (nested, di) =
      incr id;
      let myid = !id in
      Engine.schedule e ~at (fun () ->
          log := (Engine.now e, myid) :: !log;
          for _ = 1 to nested do
            sched ~at:(Engine.now e +. (float_of_int di *. 0.25)) (0, 0)
          done)
    in
    List.iter (fun (ti, n, di) -> sched ~at:(float_of_int ti *. 0.5) (n, di)) evs;
    Engine.run ~until:1.6 e;
    Engine.run e;
    List.rev !log
  in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.) Alcotest.int))
    "split run equals unbroken legacy run" (legacy_trace evs) split

(* --- Config API: the deprecated wrapper and the config record are the
   same simulation --- *)

let equiv_policy =
  Classifier.of_specs Schema.tiny2
    [ (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2); (0, [], Action.Drop) ]

let equiv_flows n =
  List.init n (fun i ->
      {
        Traffic.flow_id = i;
        header =
          Header.make Schema.tiny2
            [| Int64.of_int (i mod 256); Int64.of_int (i / 256) |];
        ingress = 0;
        start = float_of_int i *. 0.001;
        packets = 2;
        interval = 0.0001;
      })

let fingerprint (r : Flowsim.result) = Digest.string (Marshal.to_string r [])

let test_config_wrapper_equiv () =
  let build () =
    Deployment.build ~policy:equiv_policy ~topology:(Topology.line 3 ())
      ~authority_ids:[ 1 ] ()
  in
  let flows = equiv_flows 200 in
  let via_wrapper = Flowsim.run_difane (build ()) flows in
  let via_config = Flowsim.run Flowsim.Config.default (build ()) flows in
  check Alcotest.string "wrapper and config runs byte-identical"
    (fingerprint via_wrapper) (fingerprint via_config)

let test_run_rejects_multi_domain () =
  let d =
    Deployment.build ~policy:equiv_policy ~topology:(Topology.line 3 ())
      ~authority_ids:[ 1 ] ()
  in
  match
    Flowsim.run { Flowsim.Config.default with domains = 2 } d (equiv_flows 1)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run accepted domains > 1"

(* --- E-SCALE determinism: the sharded merge is byte-identical at any
   domain count --- *)

let test_scale_domain_identity () =
  let spec = Experiments.E_scale.quick_spec in
  let base = Experiments.E_scale.run ~seed:7 spec in
  check Alcotest.string "domains=4 equals domains=1"
    (Experiments.E_scale.digest base)
    (Experiments.E_scale.digest
       (Experiments.E_scale.run ~seed:7 { spec with Experiments.E_scale.domains = 4 }));
  check Alcotest.string "domains=3 equals domains=1"
    (Experiments.E_scale.digest base)
    (Experiments.E_scale.digest
       (Experiments.E_scale.run ~seed:7 { spec with Experiments.E_scale.domains = 3 }));
  check (Alcotest.list Alcotest.string) "quick-spec invariants hold" []
    (Experiments.E_scale.check ~floors:false spec base)

let test_scale_seed_sensitivity () =
  (* different seeds must actually change the workload — guards against a
     digest that ignores the samples *)
  let spec = Experiments.E_scale.quick_spec in
  let d7 = Experiments.E_scale.digest (Experiments.E_scale.run ~seed:7 spec) in
  let d8 = Experiments.E_scale.digest (Experiments.E_scale.run ~seed:8 spec) in
  check Alcotest.bool "distinct seeds give distinct digests" true (d7 <> d8)

let suite =
  [
    ( "engine-differential",
      [
        prop_differential;
        prop_differential_until;
        tc "all-equal timestamps" test_all_ties;
        tc "resume after until" test_resume_after_until;
      ] );
    ( "config-api",
      [
        tc "wrapper equals config run" test_config_wrapper_equiv;
        tc "run rejects domains > 1" test_run_rejects_multi_domain;
      ] );
    ( "scale-determinism",
      [
        tc "byte-identical across domain counts" test_scale_domain_identity;
        tc "seed changes the digest" test_scale_seed_sensitivity;
      ] );
  ]

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (0, [], Action.Drop);
    ]

let build ~replication () =
  let config = { Deployment.default_config with replication; k = 4 } in
  Deployment.build ~config ~policy ~topology:(Topology.line 5 ())
    ~authority_ids:[ 1; 3; 4 ] ()

let test_replicas_assigned () =
  let part = Partitioner.compute policy ~k:4 in
  let a = Assignment.greedy ~replication:2 part ~authority_switches:[ 0; 1; 2 ] in
  List.iter
    (fun (p : Partitioner.partition) ->
      let rs = Assignment.replicas_of a p.pid in
      check Alcotest.int "two replicas" 2 (List.length rs);
      check Alcotest.int "replicas distinct" 2 (List.length (List.sort_uniq Int.compare rs)))
    part.Partitioner.partitions

let test_replication_capped () =
  let part = Partitioner.compute policy ~k:2 in
  let a = Assignment.greedy ~replication:5 part ~authority_switches:[ 0; 1 ] in
  List.iter
    (fun (p : Partitioner.partition) ->
      check Alcotest.int "capped at pool size" 2
        (List.length (Assignment.replicas_of a p.pid)))
    part.Partitioner.partitions

let test_backup_tables_preinstalled () =
  let d = build ~replication:2 () in
  (* every partition's table exists on exactly 2 switches *)
  List.iter
    (fun (p : Partitioner.partition) ->
      let holders =
        List.filter
          (fun i ->
            List.exists
              (fun (q : Partitioner.partition) -> q.pid = p.pid)
              (Switch.authority_partitions (Deployment.switch d i)))
          [ 0; 1; 2; 3; 4 ]
      in
      check Alcotest.int "two holders" 2 (List.length holders))
    (Deployment.partitioner d).Partitioner.partitions

let test_failover_no_new_installs () =
  let d = build ~replication:2 () in
  let victim = List.hd (Deployment.authority_ids d) in
  let d' = Deployment.fail_authority d victim in
  (* backups were pre-installed: the failover may top up backup copies but
     must not need to move every partition *)
  let total = List.length (Deployment.partitioner d').Partitioner.partitions in
  check Alcotest.bool "fewer installs than partitions" true
    (Deployment.last_new_authority_installs d' <= total);
  (* semantics intact after failover *)
  let rng = Prng.create 7 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "still correct" true (Deployment.semantically_equal d' probes)

let test_failover_without_replication_needs_installs () =
  let d = build ~replication:1 () in
  let victim = List.hd (Deployment.authority_ids d) in
  let moved = List.length (Assignment.partitions_of (Deployment.assignment d) victim) in
  let d' = Deployment.fail_authority d victim in
  if moved > 0 then
    check Alcotest.bool "unreplicated failover moves tables" true
      (Deployment.last_new_authority_installs d' >= moved)

let test_failover_without_replication_replaces_correctly () =
  (* the re-placement path: with no warm backup, every partition the victim
     hosted must land on a survivor, and the network must keep answering
     with the policy's verdicts *)
  let d = build ~replication:1 () in
  let victim = List.hd (Deployment.authority_ids d) in
  let d' = Deployment.fail_authority d victim in
  check Alcotest.bool "victim left the pool" false
    (List.mem victim (Deployment.authority_ids d'));
  List.iter
    (fun (p : Partitioner.partition) ->
      let holders = Assignment.replicas_of (Deployment.assignment d') p.pid in
      check Alcotest.bool "partition re-placed on a survivor" true
        (holders <> [] && not (List.mem victim holders)))
    (Deployment.partitioner d').Partitioner.partitions;
  let rng = Prng.create 11 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "semantics preserved" true
    (Deployment.semantically_equal d' probes)

let test_promote_prefers_backup () =
  let part = Partitioner.compute policy ~k:4 in
  let a = Assignment.greedy ~replication:2 part ~authority_switches:[ 0; 1; 2 ] in
  let victim = 0 in
  let a' = Assignment.reassign a ~failed:victim in
  List.iter
    (fun (p : Partitioner.partition) ->
      let old_rs = Assignment.replicas_of a p.pid in
      let new_primary = Assignment.switch_for a' p.pid in
      if List.hd old_rs = victim then
        (* promoted to the old backup *)
        check Alcotest.int "backup promoted" (List.nth old_rs 1) new_primary
      else check Alcotest.int "unaffected primary" (List.hd old_rs) new_primary)
    part.Partitioner.partitions

let test_hosted_by () =
  let part = Partitioner.compute policy ~k:4 in
  let a = Assignment.greedy ~replication:2 part ~authority_switches:[ 0; 1 ] in
  let total_hosted = List.length (Assignment.hosted_by a 0) + List.length (Assignment.hosted_by a 1) in
  check Alcotest.int "each partition hosted twice" (2 * 4) total_hosted

let test_data_plane_failover () =
  let d = build ~replication:2 () in
  let rng = Prng.create 17 in
  let probes = List.init 150 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  (* primary goes dark with NO controller involvement *)
  let victim = List.hd (Deployment.authority_ids d) in
  Deployment.mark_unreachable d victim;
  (* every miss falls back to the backup replica in the data plane *)
  List.iter
    (fun hd ->
      let o = Deployment.inject d ~now:0. ~ingress:0 hd in
      (match o.Deployment.authority with
      | Some a when a = victim -> Alcotest.fail "miss served by the dead switch"
      | _ -> ());
      let expected = Option.value ~default:Action.Drop (Classifier.action policy hd) in
      if not (Action.equal o.Deployment.action expected) then
        Alcotest.fail "backup fallback changed semantics")
    probes;
  (* recovery restores the primary path *)
  Deployment.mark_reachable d victim;
  Deployment.flush_caches d;
  let served_by_victim = ref false in
  List.iter
    (fun hd ->
      match (Deployment.inject d ~now:1. ~ingress:0 hd).Deployment.authority with
      | Some a when a = victim -> served_by_victim := true
      | _ -> ())
    probes;
  check Alcotest.bool "primary serves again after recovery" true !served_by_victim

let test_data_plane_failover_without_backups () =
  let d = build ~replication:1 () in
  Deployment.flush_caches d;
  (* kill every authority: misses degrade to the controller path
     (NOX-style reactive setup) instead of being lost *)
  List.iter (fun a -> Deployment.mark_unreachable d a) (Deployment.authority_ids d);
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 2 0) in
  check action "policy action still applied" (Action.Forward 3) o.Deployment.action;
  check (Alcotest.option Alcotest.int) "no authority reached" None o.Deployment.authority;
  check Alcotest.bool "flagged degraded" true o.Deployment.degraded;
  check Alcotest.bool "controller installed a microflow entry" true
    (Option.is_some o.Deployment.installed);
  check Alcotest.int "degraded miss counted" 1 (Deployment.degraded_misses d);
  (* the reactive exact-match entry absorbs the repeat *)
  let o2 = Deployment.inject d ~now:0.1 ~ingress:0 (h 2 0) in
  check Alcotest.bool "repeat hits the cache" true o2.Deployment.cache_hit;
  check Alcotest.bool "repeat is not degraded" false o2.Deployment.degraded;
  check Alcotest.int "no second degraded miss" 1 (Deployment.degraded_misses d)

let test_strict_update_failover_race () =
  (* an authority dies while a strict policy update's deletion flow-mods
     are still in flight: the promoted backup must serve the NEW policy,
     and no live switch may keep a cache entry spliced from the changed
     rule *)
  let policy2 =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "00000001") ], Action.Drop);
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
        (0, [], Action.Drop);
      ]
  in
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with replication = 2; k = 4 }
      ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3 ] ()
  in
  let cp = Control_plane.create d in
  (* warm a cache entry spliced from the rule that is about to change *)
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 2 0) in
  check action "old policy action" (Action.Forward 3) o.Deployment.action;
  let changed = Deployment.changed_rule_ids ~old_policy:policy policy2 in
  check Alcotest.bool "update really changes a rule" true (changed <> []);
  Control_plane.update_policy cp ~now:1. policy2;
  (* the victim dies before any deletion aimed at it can be acked *)
  let victim = List.hd (Deployment.authority_ids (Control_plane.deployment cp)) in
  Control_plane.kill_switch cp victim;
  let t = ref 1.001 in
  while !t < 10. do
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.05
  done;
  check (Alcotest.list Alcotest.int) "victim declared dead" [ victim ]
    (Control_plane.failed_switches cp);
  let d' = Control_plane.deployment cp in
  (* no live switch holds a cache entry spliced from a changed rule *)
  Array.iteri
    (fun i sw ->
      if i <> victim then
        List.iter
          (fun (e : Tcam.entry) ->
            match Switch.origin_of_cache_rule sw e.Tcam.rule.Rule.id with
            | Some o when List.mem o changed ->
                Alcotest.failf "switch %d kept a stale entry from rule %d" i o
            | _ -> ())
          (Tcam.entries (Switch.cache sw)))
    (Deployment.switches d');
  (* a fresh miss is served by a surviving replica under the new policy *)
  let o2 = Deployment.inject d' ~now:10. ~ingress:0 (h 2 0) in
  check action "new policy action served" (Action.Forward 2) o2.Deployment.action;
  match o2.Deployment.authority with
  | Some a when a = victim -> Alcotest.fail "miss served by the dead authority"
  | _ -> ()

let prop_reassign_keeps_replication =
  qt ~count:30 "reassign restores the replication factor"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 3))
    (fun (k, r) ->
      let part = Partitioner.compute policy ~k in
      let a = Assignment.greedy ~replication:r part ~authority_switches:[ 0; 1; 2; 3 ] in
      let a' = Assignment.reassign a ~failed:1 in
      List.for_all
        (fun (p : Partitioner.partition) ->
          let rs = Assignment.replicas_of a' p.pid in
          List.length rs = min r 3
          && (not (List.mem 1 rs))
          && List.length (List.sort_uniq Int.compare rs) = List.length rs)
        part.Partitioner.partitions)

let suite =
  [
    ( "replication",
      [
        tc "replicas assigned distinctly" test_replicas_assigned;
        tc "replication capped at pool" test_replication_capped;
        tc "backup tables pre-installed" test_backup_tables_preinstalled;
        tc "failover with backups" test_failover_no_new_installs;
        tc "failover without backups moves tables" test_failover_without_replication_needs_installs;
        tc "failover without backups re-places correctly"
          test_failover_without_replication_replaces_correctly;
        tc "promotion prefers the backup" test_promote_prefers_backup;
        tc "hosted_by counts replicas" test_hosted_by;
        tc "data-plane failover to backup" test_data_plane_failover;
        tc "data-plane failover without backups" test_data_plane_failover_without_backups;
        tc "strict update racing authority failover" test_strict_update_failover_race;
        prop_reassign_keeps_replication;
      ] );
  ]

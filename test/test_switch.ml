open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (20, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "000000xx") ], Action.Forward 1);
      (0, [], Action.Forward 2);
    ]

(* A two-partition world: f1 < 128 and f1 >= 128. *)
let setup () =
  let part = Partitioner.compute policy ~k:2 in
  let auth = Switch.create ~id:7 ~cache_capacity:10 in
  let ingress = Switch.create ~id:0 ~cache_capacity:10 in
  let prules = Partitioner.partition_rules part ~assignment:(fun _ -> 7) in
  Switch.install_partition_rules ingress prules;
  Switch.install_partition_rules auth prules;
  List.iter (fun p -> Switch.install_authority auth p) part.Partitioner.partitions;
  (ingress, auth)

let test_miss_tunnels () =
  let ingress, _ = setup () in
  match Switch.process ingress ~now:0. (h 2 0) with
  | Switch.Tunnel 7 -> ()
  | _ -> Alcotest.fail "expected tunnel to authority 7"

let test_authority_serves_locally () =
  let _, auth = setup () in
  match Switch.process auth ~now:0. (h 2 0) with
  | Switch.Local (a, Switch.Authority_bank) -> check action "authority action" (Action.Forward 1) a
  | _ -> Alcotest.fail "expected local authority hit"

let test_serve_miss_and_cache () =
  let ingress, auth = setup () in
  let reply = Option.get (Switch.serve_miss auth ~now:0. (h 2 0)) in
  check action "action" (Action.Forward 1) reply.Switch.action;
  check Alcotest.int "origin" 1 reply.Switch.origin_id;
  ignore
    (Switch.install_cache_rule ~origin_id:reply.Switch.origin_id ingress ~now:0.
       reply.Switch.cache_rule);
  (* second packet of the flow hits the cache *)
  (match Switch.process ingress ~now:1. (h 2 0) with
  | Switch.Local (a, Switch.Cache_bank) -> check action "cached action" (Action.Forward 1) a
  | _ -> Alcotest.fail "expected cache hit");
  (* the cached piece must NOT swallow the higher-priority drop rule *)
  match Switch.process ingress ~now:1. (h 1 0) with
  | Switch.Tunnel _ -> ()
  | Switch.Local _ -> Alcotest.fail "cache stole a higher-priority header"
  | Switch.Unmatched | Switch.Misconfigured -> Alcotest.fail "unmatched"

let test_misrouted_miss () =
  let ingress, _ = setup () in
  (* ingress is not an authority: serve_miss must refuse *)
  check Alcotest.bool "not authority" true
    (Option.is_none (Switch.serve_miss ingress ~now:0. (h 2 0)))

let test_counters_and_origins () =
  let ingress, auth = setup () in
  let reply = Option.get (Switch.serve_miss auth ~now:0. (h 2 0)) in
  ignore
    (Switch.install_cache_rule ~origin_id:reply.Switch.origin_id ingress ~now:0.
       reply.Switch.cache_rule);
  ignore (Switch.process ingress ~now:1. (h 2 0));
  ignore (Switch.process ingress ~now:2. (h 2 0));
  check (Alcotest.option Alcotest.int) "origin mapping" (Some 1)
    (Switch.origin_of_cache_rule ingress reply.Switch.cache_rule.Rule.id);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int64)) "aggregated"
    [ (1, 2L) ]
    (Switch.aggregate_counters ingress);
  let c = Switch.stats ingress in
  check Alcotest.int64 "cache hits" 2L c.Switch.cache_hits

let test_cache_expiry () =
  let ingress, auth = setup () in
  let reply = Option.get (Switch.serve_miss auth ~now:0. (h 2 0)) in
  ignore
    (Switch.install_cache_rule ~idle_timeout:5. ~origin_id:reply.Switch.origin_id ingress
       ~now:0. reply.Switch.cache_rule);
  check Alcotest.int "cached" 1 (Switch.cache_occupancy ingress);
  ignore (Switch.expire_cache ingress ~now:10.);
  check Alcotest.int "expired" 0 (Switch.cache_occupancy ingress);
  (* origin mapping cleaned up *)
  check (Alcotest.option Alcotest.int) "origin gone" None
    (Switch.origin_of_cache_rule ingress reply.Switch.cache_rule.Rule.id);
  match Switch.process ingress ~now:11. (h 2 0) with
  | Switch.Tunnel _ -> ()
  | _ -> Alcotest.fail "expired entry should miss again"

let test_partition_bank_validation () =
  let sw = Switch.create ~id:0 ~cache_capacity:4 in
  try
    Switch.install_partition_rules sw
      [ Rule.make ~id:1 ~priority:0 (Pred.any s2) Action.Drop ];
    Alcotest.fail "non-tunnel partition rule accepted"
  with Invalid_argument _ -> ()

let test_flow_mod_banks () =
  let sw = Switch.create ~id:0 ~cache_capacity:4 in
  let r = Rule.make ~id:5 ~priority:1 (Pred.any s2) Action.Drop in
  Switch.apply_flow_mod sw ~now:0.
    { Message.command = Message.Add; bank = Message.Cache; rule = r;
      idle_timeout = None; hard_timeout = None };
  check Alcotest.int "cache add" 1 (Switch.cache_occupancy sw);
  Switch.apply_flow_mod sw ~now:0.
    { Message.command = Message.Delete; bank = Message.Cache; rule = r;
      idle_timeout = None; hard_timeout = None };
  check Alcotest.int "cache delete" 0 (Switch.cache_occupancy sw);
  try
    Switch.apply_flow_mod sw ~now:0.
      { Message.command = Message.Add; bank = Message.Authority; rule = r;
        idle_timeout = None; hard_timeout = None };
    Alcotest.fail "authority flow-mod accepted"
  with Invalid_argument _ -> ()

let test_partition_load_counting () =
  let _, auth = setup () in
  ignore (Switch.serve_miss auth ~now:0. (h 2 0));
  ignore (Switch.serve_miss auth ~now:0. (h 2 0));
  ignore (Switch.serve_miss auth ~now:0. (h 200 0));
  let loads = Switch.partition_load auth in
  let total = List.fold_left (fun acc (_, n) -> Int64.add acc n) 0L loads in
  check Alcotest.int64 "three misses counted" 3L total;
  Switch.reset_stats auth;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int64)) "reset clears" []
    (Switch.partition_load auth)

(* A same-id reinstall must surface the displaced entry's final counters
   as a [Replaced] flow-removed — the old path silently dropped them,
   losing packets from the origin rule's attribution. *)
let test_replace_notification () =
  let sw = Switch.create ~id:0 ~cache_capacity:4 in
  let r = Rule.make ~id:50 ~priority:1 (Pred.of_strings s2 [ ("f1", "0000_0010") ]) (Action.Forward 1) in
  ignore (Switch.install_cache_rule ~origin_id:42 sw ~now:0. r);
  ignore (Switch.process sw ~now:1. (h 2 0));
  ignore (Switch.process sw ~now:2. (h 2 0));
  ignore (Switch.drain_notifications sw);
  let r' = Rule.make ~id:50 ~priority:2 (Pred.of_strings s2 [ ("f1", "0000_001x") ]) (Action.Forward 1) in
  ignore (Switch.install_cache_rule ~origin_id:43 sw ~now:3. r');
  (match Switch.drain_notifications sw with
  | [ Message.Flow_removed fr ] ->
      check Alcotest.int "removed rule" 50 fr.Message.removed_rule;
      check Alcotest.bool "replaced reason" true (fr.Message.reason = Message.Replaced);
      check Alcotest.int "old cookie" 42 fr.Message.cookie;
      check Alcotest.int64 "final packets" 2L fr.Message.final_packets
  | ms -> Alcotest.failf "expected one Replaced notification, got %d" (List.length ms));
  (* provenance now points at the new origin *)
  check (Alcotest.option Alcotest.int) "origin remapped" (Some 43)
    (Switch.origin_of_cache_rule sw 50);
  check Alcotest.int "occupancy unchanged" 1 (Switch.cache_occupancy sw)

(* A partition rule that cannot tunnel is a broken bank, not uncovered
   flowspace: the packet must land in [misconfigured], not [unmatched].
   The broken rule reaches the bank through the barrier-commit path,
   which must tolerate it instead of crashing mid-dispatch. *)
let test_misconfigured_partition_rule () =
  let sw = Switch.create ~id:0 ~cache_capacity:4 in
  let broken = Rule.make ~id:1 ~priority:1 (Pred.of_strings s2 [ ("f1", "0000_0001") ]) Action.Drop in
  let good =
    Rule.make ~id:2 ~priority:1 (Pred.of_strings s2 [ ("f1", "0000_0010") ])
      (Action.To_authority 9)
  in
  let add rule =
    ignore
      (Switch.handle_control sw ~now:0.
         (Message.Flow_mod
            { Message.command = Message.Add; bank = Message.Partition; rule;
              idle_timeout = None; hard_timeout = None }))
  in
  add broken;
  add good;
  ignore (Switch.handle_control sw ~now:0. (Message.Barrier_request 1));
  (* the broken rule claims this header: misconfigured, not unmatched *)
  (match Switch.process sw ~now:1. (h 1 0) with
  | Switch.Misconfigured -> ()
  | _ -> Alcotest.fail "expected Misconfigured verdict");
  (* the good rule still tunnels *)
  (match Switch.process sw ~now:1. (h 2 0) with
  | Switch.Tunnel 9 -> ()
  | _ -> Alcotest.fail "expected tunnel to 9");
  (* nothing claims this header: genuinely unmatched *)
  (match Switch.process sw ~now:1. (h 4 0) with
  | Switch.Unmatched -> ()
  | _ -> Alcotest.fail "expected Unmatched verdict");
  let st = Switch.stats sw in
  check Alcotest.int64 "misconfigured" 1L st.Switch.misconfigured;
  check Alcotest.int64 "unmatched" 1L st.Switch.unmatched;
  Switch.reset_stats sw;
  check Alcotest.int64 "misconfigured reset" 0L (Switch.stats sw).Switch.misconfigured

(* property: after any sequence of miss-serve-and-install, the ingress
   switch never returns an action that disagrees with the policy *)
let prop_cache_never_lies =
  qt ~count:100 "cache never changes policy semantics"
    QCheck2.Gen.(list_size (int_range 1 40) gen_header_tiny2)
    (fun headers ->
      let ingress, auth = setup () in
      List.for_all
        (fun hd ->
          let expected = Option.get (Classifier.action policy hd) in
          match Switch.process ingress ~now:0. hd with
          | Switch.Local (a, _) -> Action.equal a expected
          | Switch.Unmatched | Switch.Misconfigured -> false
          | Switch.Tunnel _ -> (
              match Switch.serve_miss auth ~now:0. hd with
              | None -> false
              | Some reply ->
                  ignore
                    (Switch.install_cache_rule ~origin_id:reply.Switch.origin_id ingress
                       ~now:0. reply.Switch.cache_rule);
                  Action.equal reply.Switch.action expected))
        headers)

let suite =
  [
    ( "switch",
      [
        tc "miss tunnels to authority" test_miss_tunnels;
        tc "authority serves locally" test_authority_serves_locally;
        tc "serve miss + reactive cache" test_serve_miss_and_cache;
        tc "misrouted miss refused" test_misrouted_miss;
        tc "counters and origin attribution" test_counters_and_origins;
        tc "cache expiry" test_cache_expiry;
        tc "partition bank validation" test_partition_bank_validation;
        tc "flow-mod bank handling" test_flow_mod_banks;
        tc "partition load counting" test_partition_load_counting;
        tc "replace emits flow-removed" test_replace_notification;
        tc "misconfigured partition rule" test_misconfigured_partition_rule;
        prop_cache_never_lies;
      ] );
  ]

open Test_util

(* --- engine --- *)

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3. (fun () -> log := 3 :: !log);
  Engine.schedule e ~at:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:2. (fun () -> log := 2 :: !log);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3. (Engine.now e)

let test_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:1. (fun () -> log := i :: !log)
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO among equal times"
    (List.init 10 (fun i -> i))
    (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1. (fun () ->
      log := "a" :: !log;
      Engine.after e ~delay:0.5 (fun () -> log := "b" :: !log));
  Engine.schedule e ~at:2. (fun () -> log := "c" :: !log);
  Engine.run e;
  check (Alcotest.list Alcotest.string) "interleaved" [ "a"; "b"; "c" ] (List.rev !log)

let test_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5. (fun () -> ());
  Engine.run e;
  (try
     Engine.schedule e ~at:1. (fun () -> ());
     Alcotest.fail "past event accepted"
   with Invalid_argument _ -> ());
  try
    Engine.after e ~delay:(-1.) (fun () -> ());
    Alcotest.fail "negative delay accepted"
  with Invalid_argument _ -> ()

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~at:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  check Alcotest.int "five ran" 5 !count;
  check Alcotest.int "five pending" 5 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "rest ran" 10 !count

let test_heap_growth () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 0 to 9999 do
    Engine.schedule e ~at:(float_of_int (i mod 100)) (fun () -> incr count)
  done;
  Engine.run e;
  check Alcotest.int "all ran" 10000 !count;
  check Alcotest.int "processed" 10000 (Engine.processed e)

let prop_engine_time_order =
  qt ~count:60 "random schedules execute in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 1 60) (float_bound_inclusive 100.))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter (fun t -> Engine.schedule e ~at:t (fun () -> seen := Engine.now e :: !seen)) times;
      Engine.run e;
      let order = List.rev !seen in
      List.length order = List.length times
      && fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t >= prev, t))
              (true, neg_infinity) order))

(* --- server --- *)

let test_server_serialises () =
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:10 in
  let finish = ref [] in
  Engine.schedule e ~at:0. (fun () ->
      ignore (Server.submit s (fun () -> finish := Engine.now e :: !finish));
      ignore (Server.submit s (fun () -> finish := Engine.now e :: !finish)));
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "one per service time" [ 1.; 2. ]
    (List.rev !finish);
  check Alcotest.int "completed" 2 (Server.completed s)

let test_server_rejects_when_full () =
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:2 in
  Engine.schedule e ~at:0. (fun () ->
      (* 1 in service + 2 queued = full; the 4th must bounce *)
      ignore (Server.submit s (fun () -> ()));
      ignore (Server.submit s (fun () -> ()));
      ignore (Server.submit s (fun () -> ()));
      if Server.submit s (fun () -> ()) then Alcotest.fail "over-capacity accepted");
  Engine.run e;
  check Alcotest.int "rejected" 1 (Server.rejected s);
  check Alcotest.int "accepted" 3 (Server.accepted s)

let test_server_utilisation () =
  let e = Engine.create () in
  let s = Server.create e ~service_time:1.0 ~queue_capacity:10 in
  Engine.schedule e ~at:0. (fun () -> ignore (Server.submit s (fun () -> ())));
  (* idle gap, then another job *)
  Engine.schedule e ~at:9. (fun () -> ignore (Server.submit s (fun () -> ())));
  Engine.run e;
  check (Alcotest.float 1e-6) "2s busy over 10s" 0.2 (Server.utilisation s)

(* --- flowsim --- *)

let s2 = Schema.tiny2

let small_policy =
  Classifier.of_specs s2
    [ (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2); (0, [], Action.Drop) ]

let mk_flows n =
  List.init n (fun i ->
      {
        Traffic.flow_id = i;
        header = Header.make s2 [| Int64.of_int (i mod 256); Int64.of_int (i / 256) |];
        ingress = 0;
        start = float_of_int i *. 0.001;
        packets = 2;
        interval = 0.0001;
      })

let test_flowsim_difane_counts () =
  let d =
    Deployment.build ~policy:small_policy ~topology:(Topology.line 3 ())
      ~authority_ids:[ 1 ] ()
  in
  let flows = mk_flows 100 in
  let r = Flowsim.run_difane d flows in
  check Alcotest.int "offered" 100 r.Flowsim.offered_flows;
  check Alcotest.int "all complete at low load" 100 r.Flowsim.completed_flows;
  check Alcotest.int "no drops" 0 r.Flowsim.dropped_flows;
  check Alcotest.int "both packets delivered" 200 r.Flowsim.delivered_packets;
  (* second packet of each flow hits the freshly installed cache rule *)
  check Alcotest.bool "cache hits on repeats" true (r.Flowsim.cache_hit_packets > 0);
  check Alcotest.bool "delays recorded" true (Array.length r.Flowsim.delays = 100)

let test_flowsim_difane_saturation () =
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with cache_capacity = 0 }
      ~policy:small_policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 1 ] ()
  in
  (* distinct single-packet flows at far beyond 1/service capacity *)
  let flows =
    List.init 3000 (fun i ->
        {
          Traffic.flow_id = i;
          header = Header.make s2 [| Int64.of_int (i mod 256); Int64.of_int (i / 256) |];
          ingress = 0;
          start = float_of_int i *. 1e-7 (* 10M flows/s offered *);
          packets = 1;
          interval = 1e-4;
        })
  in
  let timing = { Flowsim.default_timing with authority_service = 1e-6; queue_capacity = 100 } in
  let r = Flowsim.run_difane ~timing d flows in
  check Alcotest.bool "drops under overload" true (r.Flowsim.dropped_flows > 0);
  let capacity = 1e6 in
  check Alcotest.bool "throughput near capacity" true
    (Float.abs (r.Flowsim.setup_throughput -. capacity) /. capacity < 0.25)

let test_flowsim_nox_punts_and_delays () =
  let n = Nox.build ~policy:small_policy ~topology:(Topology.line 3 ()) () in
  (* repeat packets must arrive after the controller round trip, or they
     miss too (the setup is still in flight) *)
  let flows =
    List.map (fun f -> { f with Traffic.interval = 0.02 }) (mk_flows 50)
  in
  let r = Flowsim.run_nox n flows in
  check Alcotest.int "completes" 50 r.Flowsim.completed_flows;
  (* every distinct header pays at least the controller RTT *)
  Array.iter
    (fun dly ->
      if dly < Flowsim.default_timing.Flowsim.controller_rtt then
        Alcotest.fail "miss delay below RTT")
    r.Flowsim.miss_delays;
  check Alcotest.bool "some microflow hits" true (r.Flowsim.cache_hit_packets > 0)

let test_flowsim_difane_faster_than_nox () =
  let flows = mk_flows 200 in
  let d =
    Deployment.build ~policy:small_policy ~topology:(Topology.line 3 ())
      ~authority_ids:[ 1 ] ()
  in
  let rd = Flowsim.run_difane d flows in
  let n = Nox.build ~policy:small_policy ~topology:(Topology.line 3 ()) () in
  let rn = Flowsim.run_nox n flows in
  let med a = (Summary.of_array a).Summary.p50 in
  check Alcotest.bool "DIFANE setup >10x faster" true
    (med rn.Flowsim.miss_delays > 10. *. med rd.Flowsim.miss_delays)

let test_install_latency_window () =
  let d =
    Deployment.build ~policy:small_policy ~topology:(Topology.line 3 ())
      ~authority_ids:[ 1 ] ()
  in
  (* install takes 5 ms; flow packets arrive every 1 ms: the first few
     repeats still miss, later ones hit *)
  let timing = { Flowsim.default_timing with install_latency = 5e-3 } in
  let flows =
    [
      {
        Traffic.flow_id = 0;
        header = Header.make s2 [| 9L; 9L |];
        ingress = 0;
        start = 0.;
        packets = 20;
        interval = 1e-3;
      };
    ]
  in
  let r = Flowsim.run_difane ~timing d flows in
  check Alcotest.int "all packets delivered" 20 r.Flowsim.delivered_packets;
  (* packets before the install completes (~5) miss; the rest hit *)
  check Alcotest.bool "some packets in the install window missed" true
    (r.Flowsim.cache_hit_packets < 19);
  check Alcotest.bool "later packets hit" true (r.Flowsim.cache_hit_packets >= 10)

let test_authority_stats_balanced () =
  (* two authorities, volume-balanced partitions, uniform headers: the
     miss load must split roughly evenly *)
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 2) ] in
  let d =
    Deployment.build
      ~config:
        { Deployment.default_config with cache_capacity = 0; k = 8; balance = `Volume }
      ~policy ~topology:(Topology.line 4 ()) ~authority_ids:[ 1; 2 ] ()
  in
  let rng = Prng.create 12 in
  let flows =
    List.init 2000 (fun i ->
        {
          Traffic.flow_id = i;
          header = Header.make s2 [| Int64.of_int (Prng.int rng 256); Int64.of_int (Prng.int rng 256) |];
          ingress = 0;
          start = float_of_int i *. 1e-4;
          packets = 1;
          interval = 1e-4;
        })
  in
  let r = Flowsim.run_difane d flows in
  match r.Flowsim.authority_stats with
  | [ { Flowsim.switch_id = a1; misses_served = c1; _ };
      { Flowsim.switch_id = a2; misses_served = c2; _ } ] ->
      check Alcotest.bool "both authorities used" true (a1 <> a2 && c1 > 0 && c2 > 0);
      check Alcotest.int "conservation" 2000 (c1 + c2);
      let skew = Float.abs (float_of_int (c1 - c2)) /. 2000. in
      if skew > 0.2 then Alcotest.failf "authority load skew %.2f" skew
  | other -> Alcotest.failf "expected 2 authorities, got %d" (List.length other)

(* --- traffic burstiness --- *)

let test_bursty_arrivals () =
  let rng = Prng.create 3 in
  let mk burstiness =
    Traffic.generate rng small_policy
      { Traffic.default with flows = 5_000; rate = 10_000.; burstiness }
  in
  let cov flows =
    (* coefficient of variation of inter-arrival gaps *)
    let times = List.map (fun f -> f.Traffic.start) flows in
    let gaps =
      List.map2 (fun a b -> b -. a)
        (List.filteri (fun i _ -> i < List.length times - 1) times)
        (List.tl times)
    in
    let s = Summary.of_list gaps in
    s.Summary.stddev /. s.Summary.mean
  in
  let poisson = cov (mk 1.0) and bursty = cov (mk 10.0) in
  check Alcotest.bool "poisson cov ~ 1" true (Float.abs (poisson -. 1.0) < 0.15);
  check Alcotest.bool "bursty cov > poisson" true (bursty > poisson +. 0.2);
  (* average rate is preserved *)
  let span flows =
    match (flows, List.rev flows) with
    | f :: _, l :: _ -> l.Traffic.start -. f.Traffic.start
    | _ -> 0.
  in
  let s1 = span (mk 1.0) and s2 = span (mk 10.0) in
  check Alcotest.bool "span within 25%" true (Float.abs (s2 -. s1) /. s1 < 0.25);
  try
    ignore (mk 0.5);
    Alcotest.fail "burstiness < 1 accepted"
  with Invalid_argument _ -> ()

(* --- cachesim --- *)

let test_packet_stream_sorted () =
  let flows = mk_flows 20 in
  let stream = Cachesim.packet_stream flows in
  check Alcotest.int "all packets" 40 (Array.length stream)

let test_wildcard_beats_microflow () =
  (* one broad rule, many headers: wildcard caching needs 1 entry *)
  let policy =
    Classifier.of_specs s2 [ (1, [], Action.Forward 1) ]
  in
  let stream =
    Array.init 1000 (fun i ->
        Header.make s2 [| Int64.of_int (i mod 256); Int64.of_int (i mod 200) |])
  in
  let wild = Cachesim.run Cachesim.Wildcard_splice policy ~cache_size:4 stream in
  let micro = Cachesim.run Cachesim.Microflow policy ~cache_size:4 stream in
  check Alcotest.int "wildcard: one compulsory miss" 1 wild.Cachesim.misses;
  check Alcotest.bool "microflow thrashes" true (micro.Cachesim.misses > 900);
  check Alcotest.int "wildcard working set" 1 wild.Cachesim.distinct_keys

let test_lru_behaviour () =
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 1) ] in
  (* cyclic scan over N+1 distinct headers with cache N: classic LRU worst
     case, every access misses under microflow caching *)
  let n = 8 in
  let stream =
    Array.init 100 (fun i -> Header.make s2 [| Int64.of_int (i mod (n + 1)); 0L |])
  in
  let r = Cachesim.run Cachesim.Microflow policy ~cache_size:n stream in
  check Alcotest.int "cyclic scan always misses" 100 r.Cachesim.misses;
  (* with cache N+1 only compulsory misses remain *)
  let r2 = Cachesim.run Cachesim.Microflow policy ~cache_size:(n + 1) stream in
  check Alcotest.int "fits: compulsory only" (n + 1) r2.Cachesim.misses

let test_sweep_consistent () =
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 1) ] in
  let stream = Array.init 200 (fun i -> Header.make s2 [| Int64.of_int (i mod 16); 0L |]) in
  let results = Cachesim.sweep policy ~cache_sizes:[ 4; 16 ] stream in
  check Alcotest.int "two sizes" 2 (List.length results);
  List.iter
    (fun (size, (w : Cachesim.result), (m : Cachesim.result)) ->
      check Alcotest.int "size matches w" size w.Cachesim.cache_size;
      check Alcotest.int "size matches m" size m.Cachesim.cache_size;
      check Alcotest.bool "wildcard <= microflow misses" true
        (w.Cachesim.misses <= m.Cachesim.misses))
    results

let test_opt_bounds_lru () =
  let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 1) ] in
  (* the LRU-hostile cyclic scan: OPT converts it from 100% to near the
     theoretical floor *)
  let n = 8 in
  let stream =
    Array.init 200 (fun i -> Header.make s2 [| Int64.of_int (i mod (n + 1)); 0L |])
  in
  let lru = Cachesim.run Cachesim.Microflow policy ~cache_size:n stream in
  let opt = Cachesim.run_opt Cachesim.Microflow policy ~cache_size:n stream in
  check Alcotest.bool "opt strictly better on cyclic scan" true
    (opt.Cachesim.misses < lru.Cachesim.misses / 2);
  check Alcotest.bool "opt >= compulsory misses" true
    (opt.Cachesim.misses >= opt.Cachesim.distinct_keys)

let prop_opt_never_worse_than_lru =
  qt ~count:40 "OPT <= LRU on random streams"
    QCheck2.Gen.(pair (int_range 1 12) (list_size (int_range 1 200) (int_bound 30)))
    (fun (size, vals) ->
      let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 1) ] in
      let stream =
        Array.of_list (List.map (fun v -> Header.make s2 [| Int64.of_int v; 0L |]) vals)
      in
      let lru = Cachesim.run Cachesim.Microflow policy ~cache_size:size stream in
      let opt = Cachesim.run_opt Cachesim.Microflow policy ~cache_size:size stream in
      opt.Cachesim.misses <= lru.Cachesim.misses
      && opt.Cachesim.misses >= min size opt.Cachesim.distinct_keys)

let prop_miss_rate_monotone_in_size =
  qt ~count:20 "bigger cache never misses more"
    QCheck2.Gen.(int_range 1 20)
    (fun size ->
      let policy = Classifier.of_specs s2 [ (1, [], Action.Forward 1) ] in
      let stream =
        Array.init 300 (fun i -> Header.make s2 [| Int64.of_int (i * 7 mod 64); 0L |])
      in
      let a = Cachesim.run Cachesim.Microflow policy ~cache_size:size stream in
      let b = Cachesim.run Cachesim.Microflow policy ~cache_size:(size + 5) stream in
      b.Cachesim.misses <= a.Cachesim.misses)

let suite =
  [
    ( "engine",
      [
        tc "events run in time order" test_event_order;
        tc "FIFO among ties" test_fifo_ties;
        tc "nested scheduling" test_nested_scheduling;
        tc "past events rejected" test_past_rejected;
        tc "run until" test_run_until;
        tc "heap growth" test_heap_growth;
        prop_engine_time_order;
      ] );
    ( "server",
      [
        tc "serialises jobs" test_server_serialises;
        tc "rejects when full" test_server_rejects_when_full;
        tc "utilisation" test_server_utilisation;
      ] );
    ( "flowsim",
      [
        tc "difane counts" test_flowsim_difane_counts;
        tc "difane saturation" test_flowsim_difane_saturation;
        tc "nox punts and delays" test_flowsim_nox_punts_and_delays;
        tc "difane beats nox on setup delay" test_flowsim_difane_faster_than_nox;
        tc "install latency window" test_install_latency_window;
        tc "bursty arrivals" test_bursty_arrivals;
        tc "authority load balance" test_authority_stats_balanced;
      ] );
    ( "cachesim",
      [
        tc "packet stream" test_packet_stream_sorted;
        tc "wildcard beats microflow" test_wildcard_beats_microflow;
        tc "LRU worst case" test_lru_behaviour;
        tc "sweep consistency" test_sweep_consistent;
        tc "OPT beats LRU's worst case" test_opt_bounds_lru;
        prop_opt_never_worse_than_lru;
        prop_miss_rate_monotone_in_size;
      ] );
  ]

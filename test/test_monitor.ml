open Test_util

(* ---- flow records ---- *)

let h2 a b = Header.make Schema.tiny2 [| Int64.of_int a; Int64.of_int b |]

let fr_config =
  { Flow_records.sample_rate = 1; idle_timeout = 10.; active_timeout = 60.;
    max_entries = 8 }

let test_count_based_sampling () =
  let fr =
    Flow_records.create ~config:{ fr_config with Flow_records.sample_rate = 3 } ()
  in
  for i = 1 to 10 do
    Flow_records.observe fr ~now:(float_of_int i) ~ingress:0 (h2 1 1)
  done;
  check Alcotest.int "every 3rd packet" 3 (Flow_records.sampled_packets fr);
  check Alcotest.int "all observed" 10 (Flow_records.observed_packets fr);
  Flow_records.flush fr ~now:11.;
  match Flow_records.exports fr with
  | [ r ] ->
      check Alcotest.int "one flow, 3 sampled packets" 3 r.Flow_records.packets;
      check (Alcotest.float 1e-9) "first at 3rd observe" 3. r.Flow_records.first_seen;
      check (Alcotest.float 1e-9) "last at 9th observe" 9. r.Flow_records.last_seen;
      check Alcotest.bool "flush reason" true (r.Flow_records.reason = Flow_records.Flush)
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let test_idle_and_active_export () =
  let fr = Flow_records.create ~config:fr_config () in
  Flow_records.observe fr ~now:0. ~ingress:0 (h2 1 1);
  (* silence past the idle timeout: the sweep exports it *)
  Flow_records.sweep fr ~now:20.;
  (* a long-lived flow: touches every 5 s keep it alive past the active
     timeout, at which point the touch itself cuts the record *)
  let rec touch t = if t <= 65. then (Flow_records.observe fr ~now:t ~ingress:1 (h2 2 2); touch (t +. 5.)) in
  touch 0.;
  Flow_records.flush fr ~now:70.;
  match Flow_records.exports fr with
  | [ a; b; c ] ->
      check Alcotest.bool "idle reason" true (a.Flow_records.reason = Flow_records.Idle);
      check Alcotest.int "idle ingress" 0 a.Flow_records.ingress;
      check Alcotest.bool "active cut" true (b.Flow_records.reason = Flow_records.Active);
      check Alcotest.bool "remainder flushed" true
        (c.Flow_records.reason = Flow_records.Flush);
      check Alcotest.int "seqs dense" 3
        (List.length
           (List.filter
              (fun (r : Flow_records.record) ->
                r.Flow_records.seq = 0 || r.Flow_records.seq = 1 || r.Flow_records.seq = 2)
              [ a; b; c ]))
  | rs -> Alcotest.failf "expected 3 records, got %d" (List.length rs)

let test_eviction_order () =
  let fr =
    Flow_records.create ~config:{ fr_config with Flow_records.max_entries = 2 } ()
  in
  Flow_records.observe fr ~now:1. ~ingress:0 (h2 1 1);
  Flow_records.observe fr ~now:2. ~ingress:0 (h2 2 2);
  (* cache full: the third flow pushes out the longest-idle (h 1,1) *)
  Flow_records.observe fr ~now:3. ~ingress:0 (h2 3 3);
  check Alcotest.int "bounded" 2 (Flow_records.active_entries fr);
  match Flow_records.exports fr with
  | [ r ] ->
      check Alcotest.bool "evicted reason" true
        (r.Flow_records.reason = Flow_records.Evicted);
      check header "longest-idle victim" (h2 1 1) r.Flow_records.header
  | rs -> Alcotest.failf "expected 1 export, got %d" (List.length rs)

let test_flows_json_shape_and_determinism () =
  let build () =
    let fr = Flow_records.create ~config:fr_config () in
    List.iter
      (fun (t, i, a) -> Flow_records.observe fr ~now:t ~ingress:i (h2 a a))
      [ (0.1, 0, 1); (0.2, 1, 2); (0.3, 0, 1); (0.4, 2, 3); (0.5, 1, 2) ];
    Flow_records.flush fr ~now:1.;
    Flow_records.to_json fr
  in
  let j1 = build () and j2 = build () in
  check Alcotest.string "bit-identical across identical runs" j1 j2;
  check Alcotest.bool "schema tag" true
    (String.length j1 > 30 && String.sub j1 0 28 = {|{"schema":"difane-flows-v1",|});
  let contains needle =
    let n = String.length needle and m = String.length j1 in
    let rec go i = i + n <= m && (String.sub j1 i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "named header fields" true (contains {|"key":{"f1":1,"f2":1}|});
  check Alcotest.bool "reason rendered" true (contains {|"reason":"flush"|})

(* ---- sampler ---- *)

let test_sampler_boundaries_and_baseline () =
  Telemetry.reset ();
  let c = Telemetry.counter "mon_test_counter" in
  Telemetry.add c 100;
  (* baseline is taken at track time: the 100 must not show up *)
  let s = Sampler.create ~interval:1.0 () in
  Sampler.track_counter s "mon_test_counter";
  Telemetry.add c 5;
  Sampler.tick s ~now:2.5;
  Telemetry.add c 7;
  Sampler.finish s ~now:2.5;
  match Sampler.series s with
  | [ sr ] ->
      let pts = sr.Sampler.points in
      check Alcotest.int "boundaries 1,2 plus the tail" 3 (Array.length pts);
      check (Alcotest.float 1e-9) "first boundary" 1.0 pts.(0).Sampler.at;
      check (Alcotest.float 1e-9) "baselined value" 5. pts.(0).Sampler.v;
      check (Alcotest.float 1e-9) "second boundary" 2.0 pts.(1).Sampler.at;
      check (Alcotest.float 1e-9) "tail at now" 2.5 pts.(2).Sampler.at;
      check (Alcotest.float 1e-9) "tail sees later adds" 12. pts.(2).Sampler.v;
      check Alcotest.int "nothing dropped" 0 sr.Sampler.dropped
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l)

let test_sampler_ring_wraparound () =
  Telemetry.reset ();
  let g = Telemetry.gauge "mon_test_gauge" in
  let s = Sampler.create ~capacity:4 ~interval:1.0 () in
  Sampler.track_gauge s "mon_test_gauge";
  for i = 1 to 10 do
    Telemetry.set g (float_of_int i);
    Sampler.tick s ~now:(float_of_int i)
  done;
  match Sampler.series s with
  | [ sr ] ->
      let pts = sr.Sampler.points in
      check Alcotest.int "bounded at capacity" 4 (Array.length pts);
      check Alcotest.int "dropped the overflow" 6 sr.Sampler.dropped;
      check Alcotest.bool "newest survive, oldest first" true
        (Array.to_list (Array.map (fun p -> p.Sampler.at) pts) = [ 7.; 8.; 9.; 10. ])
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l)

(* ---- hotspot detection ---- *)

let pts l = Array.of_list (List.map (fun (at, v) -> { Sampler.at; v }) l)

let test_hotspot_flags_imbalance () =
  (* two authorities; all the second window's load lands on switch 9 *)
  let series =
    [ (3, pts [ (1., 10.); (2., 20.) ]); (9, pts [ (1., 10.); (2., 60.) ]) ]
  in
  (match Hotspot.detect ~threshold:1.5 series with
  | [ e ] ->
      check Alcotest.int "hot switch" 9 e.Hotspot.switch_id;
      check (Alcotest.float 1e-9) "window start" 1. e.Hotspot.window_start;
      check (Alcotest.float 1e-9) "load delta" 50. e.Hotspot.load;
      check (Alcotest.float 1e-9) "share" (50. /. 60.) e.Hotspot.share;
      check (Alcotest.float 1e-6) "ratio vs fair half" (2. *. 50. /. 60.) e.Hotspot.ratio
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  (* perfectly balanced load never flags *)
  let balanced = [ (0, pts [ (1., 30.) ]); (1, pts [ (1., 30.) ]) ] in
  check Alcotest.int "balanced: none" 0 (List.length (Hotspot.detect balanced))

let test_hotspot_min_load_and_threshold () =
  (* a 2-packet window is noise, not a hotspot *)
  let tiny = [ (0, pts [ (1., 2.) ]); (1, pts [ (1., 0.) ]) ] in
  check Alcotest.int "min_load filters idle windows" 0
    (List.length (Hotspot.detect ~min_load:10. tiny));
  check Alcotest.int "but flags when the floor allows" 1
    (List.length (Hotspot.detect ~min_load:1. tiny));
  (try
     ignore (Hotspot.detect ~threshold:1.0 tiny);
     Alcotest.fail "threshold 1.0 accepted"
   with Invalid_argument _ -> ());
  (* worst picks the highest ratio *)
  let series =
    [ (0, pts [ (1., 9.); (2., 9.) ]); (1, pts [ (1., 1.); (2., 21.) ]) ]
  in
  match Hotspot.worst (Hotspot.detect ~threshold:1.2 series) with
  | Some e -> check Alcotest.int "worst is the window-2 spike" 1 e.Hotspot.switch_id
  | None -> Alcotest.fail "no events"

(* ---- end to end: provenance through a monitored simulation ---- *)

let monitored_run seed =
  Telemetry.reset ();
  let rng = Prng.create seed in
  let policy =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with Policy_gen.rules = 60; chains = 10 }
  in
  let config =
    { Deployment.default_config with Deployment.k = 4; cache_capacity = 32 }
  in
  let d =
    Deployment.build ~config ~policy ~topology:(Topology.star 4 ())
      ~authority_ids:[ 1; 2 ] ()
  in
  let profile =
    {
      Traffic.default with
      Traffic.flows = 1_500;
      rate = 20_000.;
      alpha = 1.2;
      distinct_headers = 300;
      packets_per_flow_mean = 2.0;
      ingresses = [ 3 ];
    }
  in
  let flows = Traffic.generate (Prng.create (seed + 1)) policy profile in
  let m =
    Monitor.create
      ~config:{ Monitor.default_config with Monitor.interval = 0.01 }
      d
  in
  let r = Flowsim.run_difane ~monitor:m d flows in
  (d, m, r)

let test_monitored_sim_provenance () =
  let d, m, r = monitored_run 11 in
  check Alcotest.bool "packets flowed" true (r.Flowsim.delivered_packets > 0);
  (* every installed cache rule carries a full provenance pair that
     resolves to a real policy rule and a real partition *)
  let policy_ids =
    List.map (fun (ru : Rule.t) -> ru.Rule.id) (Classifier.rules (Deployment.policy d))
  in
  let pids =
    List.map
      (fun (p : Partitioner.partition) -> p.Partitioner.pid)
      (Deployment.partitioner d).Partitioner.partitions
  in
  Array.iter
    (fun sw ->
      List.iter
        (fun (e : Tcam.entry) ->
          match Switch.provenance_of_cache_rule sw e.Tcam.rule.Rule.id with
          | None -> Alcotest.fail "cache rule without provenance"
          | Some (origin, pid) ->
              check Alcotest.bool "origin is a policy rule" true
                (List.mem origin policy_ids);
              check Alcotest.bool "pid is a real partition" true (List.mem pid pids))
        (Tcam.entries (Switch.cache sw)))
    (Deployment.switches d);
  (* per-region cache hits add up to each switch's cache-hit total *)
  Array.iter
    (fun sw ->
      let by_pid =
        List.fold_left (fun acc (_, n) -> Int64.add acc n) 0L (Switch.cache_load sw)
      in
      check Alcotest.int64 "cache_load sums to stats.cache_hits"
        (Switch.stats sw).Switch.cache_hits by_pid)
    (Deployment.switches d);
  (* attribution found the traffic: some rule accounts for hits, and the
     heavy hitters carry non-empty provenance chains *)
  match Monitor.heavy_hitters ~k:3 m with
  | [] -> Alcotest.fail "no heavy hitters on a live workload"
  | hh ->
      List.iter
        (fun (h : Monitor.rule_report) ->
          check Alcotest.bool "chain non-empty" true (h.Monitor.partitions <> []);
          check Alcotest.bool "counted hits" true (Monitor.rule_total h > 0L))
        hh

let test_monitored_sim_deterministic_json () =
  let _, m1, _ = monitored_run 23 in
  let f1 = Flow_records.to_json (Monitor.flow_records m1) in
  let j1 = Monitor.to_json m1 in
  let _, m2, _ = monitored_run 23 in
  check Alcotest.string "flow export bit-identical" f1
    (Flow_records.to_json (Monitor.flow_records m2));
  check Alcotest.string "monitor report bit-identical" j1 (Monitor.to_json m2);
  check Alcotest.bool "monitor schema tag" true
    (String.sub j1 0 30 = {|{"schema":"difane-monitor-v1",|})

let suite =
  [
    ( "monitor",
      [
        tc "count-based sampling" test_count_based_sampling;
        tc "idle and active export" test_idle_and_active_export;
        tc "eviction order" test_eviction_order;
        tc "flows json shape + determinism" test_flows_json_shape_and_determinism;
        tc "sampler boundaries + baseline" test_sampler_boundaries_and_baseline;
        tc "sampler ring wraparound" test_sampler_ring_wraparound;
        tc "hotspot flags imbalance" test_hotspot_flags_imbalance;
        tc "hotspot min-load and threshold" test_hotspot_min_load_and_threshold;
        tc "monitored sim provenance" test_monitored_sim_provenance;
        tc "monitored sim deterministic json" test_monitored_sim_deterministic_json;
      ] );
  ]

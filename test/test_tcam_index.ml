(* Differential testing of the TCAM's tuple-space fast path: every
   operation sequence is executed against an indexed table and a
   linear-scan table ([Tcam.create_linear]); both must agree on every
   observable — the rule each lookup chooses (including priority ties and
   replace/evict/expire interleavings), the displaced sets, occupancy,
   stats, and the per-entry counters.  The linear table IS the reference
   semantics, so any divergence is an index-maintenance bug. *)

open Test_util

let s2 = Schema.tiny2

(* Predicates drawn from a small pool of mask SHAPES (per-field prefix
   lengths) so mask vectors collide and the tuple-space index actually
   groups — the non-degenerate regime where the fast path runs. *)
let gen_prefix_pred =
  let open QCheck2.Gen in
  let field =
    let* len = oneofl [ 0; 2; 4; 8 ] in
    let* v = int_bound 255 in
    return
      (Ternary.of_string
         (String.init 8 (fun i ->
              if i < len then if (v lsr (7 - i)) land 1 = 1 then '1' else '0'
              else 'x')))
  in
  let* a = field in
  let* b = field in
  return (Pred.make s2 [ a; b ])

type op =
  | Insert of int * int * Pred.t * bool * bool  (* id, prio, pred, idle?, hard? *)
  | Insert_or_evict of int * int * Pred.t
  | Lookup of int * int
  | Expire
  | Remove of int
  | Advance of float

let gen_op =
  let open QCheck2.Gen in
  oneof
    [
      (let* id = int_bound 20 in
       let* pr = int_bound 3 in
       (* small range => frequent priority ties, broken by rule id *)
       let* pd = gen_prefix_pred in
       let* idle = bool in
       let* hard = bool in
       return (Insert (id, pr, pd, idle, hard)));
      (let* id = int_bound 20 in
       let* pr = int_bound 3 in
       let* pd = gen_prefix_pred in
       return (Insert_or_evict (id, pr, pd)));
      (let* a = int_bound 255 in
       let* b = int_bound 255 in
       return (Lookup (a, b)));
      return Expire;
      (int_bound 20 >|= fun id -> Remove id);
      (float_bound_inclusive 2. >|= fun dt -> Advance dt);
    ]

let entry_sig (e : Tcam.entry) = (e.Tcam.rule.Rule.id, e.Tcam.packets, e.Tcam.bytes)
let displ_sig (d : Tcam.displaced) =
  ( List.map entry_sig d.Tcam.evicted,
    Option.map entry_sig d.Tcam.replaced,
    d.Tcam.bounced )

let insert_sig = function
  | `Ok -> `Ok
  | `Full -> `Full
  | `Replaced e -> `Replaced (entry_sig e)

let stats_sig (s : Tcam.stats) =
  (s.Tcam.hits, s.Tcam.misses, s.Tcam.inserts, s.Tcam.evictions, s.Tcam.expirations)

let table_sig t = List.map entry_sig (Tcam.entries t)

let run_ops ops =
  let a = Tcam.create ~capacity:8 in
  let b = Tcam.create_linear ~capacity:8 in
  let clock = ref 0. in
  List.for_all
    (fun op ->
      let step_agrees =
        match op with
        | Advance dt ->
            clock := !clock +. dt;
            true
        | Insert (id, priority, pd, idle, hard) ->
            let rule = Rule.make ~id ~priority pd Action.Drop in
            let idle = if idle then Some 1.0 else None in
            let hard = if hard then Some 3.0 else None in
            let ins t =
              insert_sig
                (Tcam.insert ?idle_timeout:idle ?hard_timeout:hard t ~now:!clock rule)
            in
            ins a = ins b
        | Insert_or_evict (id, priority, pd) ->
            let rule = Rule.make ~id ~priority pd Action.Drop in
            let ins t =
              displ_sig (Tcam.insert_or_evict_entries ~idle_timeout:1.0 t ~now:!clock rule)
            in
            ins a = ins b
        | Lookup (x, y) ->
            let h = Header.make s2 [| Int64.of_int x; Int64.of_int y |] in
            let look t =
              Option.map (fun (r : Rule.t) -> r.id) (Tcam.lookup t ~now:!clock h)
            in
            look a = look b
        | Expire ->
            let exp t =
              List.map (fun (r : Rule.t) -> r.id) (Tcam.expire t ~now:!clock)
            in
            exp a = exp b
        | Remove id -> Tcam.remove a id = Tcam.remove b id
      in
      step_agrees
      && Tcam.occupancy a = Tcam.occupancy b
      && stats_sig (Tcam.stats a) = stats_sig (Tcam.stats b)
      && table_sig a = table_sig b)
    ops

let prop_index_equals_linear =
  qt ~count:400 "indexed TCAM = linear TCAM on random op sequences"
    QCheck2.Gen.(list_size (int_range 1 80) gen_op)
    run_ops

(* A same-shape rule pool keeps the group count tiny; the heuristic must
   keep the fast path on.  All-distinct exact predicates (one group per
   entry) must trip the fallback. *)
let test_degenerate_heuristic () =
  let t = Tcam.create ~capacity:64 in
  for i = 0 to 31 do
    let bits =
      String.init 8 (fun k -> if (i lsr (7 - k)) land 1 = 1 then '1' else 'x')
    in
    ignore
      (Tcam.insert t ~now:0.
         (Rule.make ~id:i ~priority:i
            (Pred.of_strings s2 [ ("f1", bits) ])
            Action.Drop))
  done;
  check Alcotest.bool "many groups on distinct shapes" true (Tcam.index_groups t > 8);
  check Alcotest.bool "degenerate" true (Tcam.index_degenerate t);
  let t2 = Tcam.create ~capacity:64 in
  for i = 0 to 31 do
    let bits =
      String.init 8 (fun k ->
          if k < 5 then if (i lsr (4 - k)) land 1 = 1 then '1' else '0' else 'x')
    in
    ignore
      (Tcam.insert t2 ~now:0.
         (Rule.make ~id:i ~priority:1
            (Pred.of_strings s2 [ ("f1", bits) ])
            Action.Drop))
  done;
  check Alcotest.int "one shared mask shape" 1 (Tcam.index_groups t2);
  check Alcotest.bool "fast path on" false (Tcam.index_degenerate t2);
  let t3 = Tcam.create_linear ~capacity:64 in
  check Alcotest.bool "linear table always degenerate" true (Tcam.index_degenerate t3)

(* Expiry and eviction are separate counters: timeout churn must land in
   [expirations], LRU victims in [evictions], and the registry mirrors
   (tcam_evictions / tcam_expirations) must move in step. *)
let test_expirations_split_from_evictions () =
  let snap0 = Telemetry.snapshot () in
  let tele name = Telemetry.counter_total snap0 name in
  let ev0 = tele "tcam_evictions" and ex0 = tele "tcam_expirations" in
  let t = Tcam.create ~capacity:2 in
  let rule id bits = Rule.make ~id ~priority:1 (Pred.of_strings s2 [ ("f1", bits) ]) Action.Drop in
  ignore (Tcam.insert ~idle_timeout:1. t ~now:0. (rule 1 "0000_0001"));
  ignore (Tcam.insert t ~now:0.5 (rule 2 "0000_0010"));
  (* rule 1 idles out: an expiration, not an eviction *)
  check Alcotest.int "one expired" 1 (List.length (Tcam.expire t ~now:2.));
  (* rule 3 squeezes rule 2 out: an eviction, not an expiration *)
  ignore (Tcam.insert t ~now:3. (rule 3 "0000_0011"));
  ignore (Tcam.insert_or_evict t ~now:4. (rule 4 "0000_0100"));
  let s = Tcam.stats t in
  check Alcotest.int64 "expirations" 1L s.Tcam.expirations;
  check Alcotest.int64 "evictions" 1L s.Tcam.evictions;
  let snap1 = Telemetry.snapshot () in
  let tele1 name = Telemetry.counter_total snap1 name in
  check Alcotest.int "registry evictions" (ev0 + 1) (tele1 "tcam_evictions");
  check Alcotest.int "registry expirations" (ex0 + 1) (tele1 "tcam_expirations");
  Tcam.reset_stats t;
  let s = Tcam.stats t in
  check Alcotest.int64 "expirations reset" 0L s.Tcam.expirations;
  check Alcotest.int64 "evictions reset" 0L s.Tcam.evictions

(* The Replaced path must hand back the displaced entry with its final
   counters — OpenFlow flow-mod semantics; silently dropping them was the
   counter-loss bug. *)
let test_replace_returns_final_counters () =
  let t = Tcam.create ~capacity:4 in
  let r1 = Rule.make ~id:9 ~priority:1 (Pred.of_strings s2 [ ("f1", "0000_0001") ]) Action.Drop in
  ignore (Tcam.insert t ~now:0. r1);
  ignore (Tcam.lookup t ~now:1. ~bytes:100 (Header.make s2 [| 1L; 0L |]));
  ignore (Tcam.lookup t ~now:2. ~bytes:100 (Header.make s2 [| 1L; 0L |]));
  let r1' = Rule.make ~id:9 ~priority:5 (Pred.of_strings s2 [ ("f1", "0000_001x") ]) Action.Drop in
  (match Tcam.insert t ~now:3. r1' with
  | `Replaced e ->
      check Alcotest.int64 "final packets" 2L e.Tcam.packets;
      check Alcotest.int64 "final bytes" 200L e.Tcam.bytes
  | `Ok | `Full -> Alcotest.fail "expected `Replaced");
  check Alcotest.int "occupancy unchanged" 1 (Tcam.occupancy t);
  (* the replacement is also surfaced through insert_or_evict_entries *)
  let d = Tcam.insert_or_evict_entries t ~now:4. (Rule.make ~id:9 ~priority:1 (Pred.any s2) Action.Drop) in
  check Alcotest.bool "replaced entry surfaced" true (Option.is_some d.Tcam.replaced);
  check (Alcotest.list Alcotest.int) "no eviction on same-id reinstall" []
    (List.map (fun (e : Tcam.entry) -> e.Tcam.rule.Rule.id) d.Tcam.evicted)

let suite =
  [
    ( "tcam index",
      [
        prop_index_equals_linear;
        tc "degenerate-case heuristic" test_degenerate_heuristic;
        tc "expirations split from evictions" test_expirations_split_from_evictions;
        tc "replace returns final counters" test_replace_returns_final_counters;
      ] );
  ]

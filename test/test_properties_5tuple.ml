(* Property coverage on the realistic 5-tuple schema: the tiny2 properties
   re-checked where it matters, plus whole-system invariants on generated
   ACL policies.  Catches width/arity assumptions that an 8-bit two-field
   schema would never exercise. *)

open Test_util

let schema = Schema.acl_5tuple

let gen_acl =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  let* rules = int_range 20 80 in
  return
    (Policy_gen.acl (Prng.create seed)
       { Policy_gen.default_acl with rules; chains = 6; chain_depth = 4 })

let gen_header_for policy =
  let open QCheck2.Gen in
  let* salt = int_bound 1_000_000 in
  let rng = Prng.create salt in
  return (Traffic.headers_for rng policy 1).(0)

let gen_acl_and_header =
  let open QCheck2.Gen in
  let* policy = gen_acl in
  let* h = gen_header_for policy in
  return (policy, h)

let prop_policy_total =
  qt ~count:30 "generated ACLs are total" gen_acl_and_header (fun (policy, h) ->
      Option.is_some (Classifier.action policy h))

let prop_splice_correct_5tuple =
  qt ~count:60 "splice on 5-tuple: piece holds header, independent, same action"
    gen_acl_and_header
    (fun (policy, h) ->
      match Splice.for_header policy h with
      | None -> false
      | Some piece ->
          Pred.matches piece.Splice.pred h
          && List.for_all
               (fun (r : Rule.t) ->
                 (not (Rule.beats r piece.Splice.origin))
                 || not (Pred.overlaps r.pred piece.Splice.pred))
               (Classifier.rules policy)
          && Classifier.action policy h = Some piece.Splice.origin.Rule.action)

let prop_partition_semantics_5tuple =
  qt ~count:30 "partitioned lookup = direct lookup on 5-tuple"
    QCheck2.Gen.(triple gen_acl (int_range 1 32) (int_bound 1_000_000))
    (fun (policy, k, salt) ->
      let part = Partitioner.compute policy ~k in
      let rng = Prng.create salt in
      let headers = Traffic.headers_for rng policy 20 in
      Array.for_all
        (fun h ->
          let p = Partitioner.find part h in
          Classifier.action p.Partitioner.table h = Classifier.action policy h)
        headers)

let prop_indexed_5tuple =
  qt ~count:30 "indexed lookup = linear on 5-tuple ACLs" gen_acl_and_header
    (fun (policy, h) ->
      let idx = Indexed.of_classifier policy in
      Option.map (fun (r : Rule.t) -> r.id) (Indexed.first_match idx h)
      = Option.map (fun (r : Rule.t) -> r.id) (Classifier.first_match policy h))

let prop_deployment_5tuple =
  qt ~count:15 "deployed network = policy on 5-tuple workloads"
    QCheck2.Gen.(pair gen_acl (int_bound 1_000_000))
    (fun (policy, salt) ->
      let d =
        Deployment.build
          ~config:{ Deployment.default_config with k = 8; cache_capacity = 32 }
          ~policy ~topology:(Topology.line 4 ()) ~authority_ids:[ 1; 2 ] ()
      in
      let rng = Prng.create salt in
      let headers = Traffic.headers_for rng policy 30 in
      Array.for_all
        (fun h ->
          (* inject the same header twice: the second pass exercises the
             spliced cache entry *)
          let o1 = Deployment.inject d ~now:0. ~ingress:0 h in
          let o2 = Deployment.inject d ~now:0.1 ~ingress:0 h in
          let expected = Option.get (Classifier.action policy h) in
          Action.equal o1.Deployment.action expected
          && Action.equal o2.Deployment.action expected)
        headers)

let prop_policy_io_5tuple =
  qt ~count:20 "policy files roundtrip on 5-tuple ACLs" gen_acl (fun policy ->
      match Policy_io.of_string (Policy_io.to_string policy) with
      | Error _ -> false
      | Ok c ->
          (* structural: same rule count and per-rule equality up to ids *)
          Classifier.length c = Classifier.length policy
          && List.for_all2
               (fun (a : Rule.t) (b : Rule.t) ->
                 a.priority = b.priority && Pred.equal a.pred b.pred
                 && Action.equal a.action b.action)
               (Classifier.rules policy) (Classifier.rules c))

let prop_wire_roundtrip_5tuple =
  qt ~count:40 "flow-mods with 5-tuple predicates survive the codec"
    gen_acl_and_header
    (fun (policy, _) ->
      List.for_all
        (fun rule ->
          let msg =
            Message.Flow_mod
              { Message.command = Message.Add; bank = Message.Authority; rule;
                idle_timeout = None; hard_timeout = Some 2.5 }
          in
          match Message.decode schema (Message.encode ~xid:7 msg) with
          | Ok (7, _, msg') -> Message.equal msg msg'
          | _ -> false)
        (List.filteri (fun i _ -> i < 10) (Classifier.rules policy)))

let prop_minimise_5tuple =
  qt ~count:5 "minimise preserves 5-tuple ACL semantics exactly"
    QCheck2.Gen.(int_bound 1000)
    (fun salt ->
      let policy =
        Policy_gen.acl (Prng.create salt)
          { Policy_gen.default_acl with rules = 30; chains = 4; chain_depth = 3 }
      in
      let policy', _ = Optimize.minimise policy in
      Equiv.equivalent policy policy')

let suite =
  [
    ( "properties (5-tuple)",
      [
        prop_policy_total;
        prop_splice_correct_5tuple;
        prop_partition_semantics_5tuple;
        prop_indexed_5tuple;
        prop_deployment_5tuple;
        prop_policy_io_5tuple;
        prop_wire_roundtrip_5tuple;
        prop_minimise_5tuple;
      ] );
  ]

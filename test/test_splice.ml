open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

(* A chain: narrow drop on top of a broad accept — the structure where
   naive rule caching is unsafe. *)
let chained =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 9);
      (10, [ ("f1", "000000xx") ], Action.Forward 1);
      (0, [], Action.Drop);
    ]

let test_piece_contains_header () =
  let hdr = h 2 0 in
  match Splice.for_header chained hdr with
  | None -> Alcotest.fail "no piece"
  | Some piece ->
      check Alcotest.bool "contains header" true (Pred.matches piece.pred hdr);
      check Alcotest.int "origin is broad accept" 2 piece.origin.Rule.id

let test_piece_is_independent () =
  (* The spliced piece of the broad accept must avoid f1=1 (drop rule) and
     the f2>=128 slice (forward-9 rule). *)
  match Splice.for_header chained (h 2 0) with
  | None -> Alcotest.fail "no piece"
  | Some piece ->
      check Alcotest.bool "avoids top drop" false (Pred.matches piece.pred (h 1 0));
      check Alcotest.bool "avoids middle rule" false (Pred.matches piece.pred (h 2 128));
      (* and every header of the piece gets the origin's action *)
      List.iter
        (fun hd ->
          check (Alcotest.option action) "action preserved" (Some (Action.Forward 1))
            (Classifier.action chained hd))
        (Pred.enumerate ~limit:64 piece.pred)

let test_cache_rule () =
  let piece = Option.get (Splice.for_header chained (h 2 0)) in
  let counter = ref 100 in
  let next_id () = incr counter; !counter in
  let r = Splice.cache_rule ~next_id chained piece in
  check Alcotest.int "fresh id" 101 r.Rule.id;
  check action "origin action" (Action.Forward 1) r.Rule.action;
  check pred "piece pred" piece.pred r.Rule.pred;
  (* the cache priority is the origin's bottom-up table rank *)
  check Alcotest.int "rank priority" (Splice.cache_priority chained piece.origin)
    r.Rule.priority;
  check Alcotest.int "broad accept ranks 2nd from bottom" 2 r.Rule.priority

let test_no_match () =
  let partial = Classifier.of_specs s2 [ (1, [ ("f1", "00000001") ], Action.Drop) ] in
  check Alcotest.bool "none" true (Option.is_none (Splice.for_header partial (h 2 0)))

let test_pieces_of_rule () =
  let broad = Option.get (Classifier.find chained 2) in
  let pieces = Splice.pieces_of_rule chained broad in
  check Alcotest.bool "several pieces" true (List.length pieces >= 2);
  (* pieces are disjoint and none overlaps a higher-priority rule *)
  let rec disjoint = function
    | [] -> true
    | p :: rest -> List.for_all (fun q -> not (Pred.overlaps p q)) rest && disjoint rest
  in
  check Alcotest.bool "disjoint" true (disjoint pieces);
  List.iter
    (fun p ->
      check Alcotest.bool "independent of drop" false
        (Pred.overlaps p (Pred.of_strings s2 [ ("f1", "00000001") ])))
    pieces

let test_dependent_set_cost () =
  (* caching the broad accept the naive way drags in both rules above it *)
  let broad = Option.get (Classifier.find chained 2) in
  check Alcotest.int "dependent set" 3 (Splice.dependent_set_cost chained broad);
  let top = Option.get (Classifier.find chained 0) in
  check Alcotest.int "top rule independent" 1 (Splice.dependent_set_cost chained top)

(* --- properties: the DIFANE independence invariant --- *)

let gen_chain_policy =
  let open QCheck2.Gen in
  let* n = int_range 2 8 in
  let* specs = list_repeat n (pair (int_bound 10) gen_pred_tiny2) in
  let rules =
    List.mapi
      (fun i (pr, pd) ->
        Rule.make ~id:i ~priority:pr pd (if i mod 2 = 0 then Action.Drop else Action.Forward i))
      specs
  in
  (* close the policy so every header matches *)
  let rules = Rule.make ~id:n ~priority:(-1) (Pred.any s2) (Action.Forward 0) :: rules in
  return (Classifier.create s2 rules)

let prop_piece_semantics =
  qt "every header of a spliced piece gets the origin action"
    QCheck2.Gen.(pair gen_chain_policy gen_header_tiny2)
    (fun (c, hdr) ->
      match Splice.for_header c hdr with
      | None -> false (* policy is total *)
      | Some piece ->
          List.for_all
            (fun hd ->
              match Classifier.action c hd with
              | Some a -> Action.equal a piece.origin.Rule.action
              | None -> false)
            (Pred.enumerate ~limit:32 piece.pred))

let prop_piece_independent =
  qt "spliced piece overlaps no higher-priority rule"
    QCheck2.Gen.(pair gen_chain_policy gen_header_tiny2)
    (fun (c, hdr) ->
      match Splice.for_header c hdr with
      | None -> false
      | Some piece ->
          List.for_all
            (fun (r : Rule.t) ->
              (not (Rule.beats r piece.origin)) || not (Pred.overlaps r.pred piece.pred))
            (Classifier.rules c))

let prop_pieces_cover_effective_region =
  qt ~count:100 "pieces of a rule = its effective region"
    QCheck2.Gen.(triple gen_chain_policy (int_bound 5) gen_header_tiny2)
    (fun (c, idx, hdr) ->
      match List.nth_opt (Classifier.rules c) (idx mod Classifier.length c) with
      | None -> true
      | Some r ->
          let pieces = Splice.pieces_of_rule c r in
          let in_pieces = List.exists (fun p -> Pred.matches p hdr) pieces in
          in_pieces = Region.matches (Classifier.effective_region c r) hdr)

let suite =
  [
    ( "splice",
      [
        tc "piece contains the header" test_piece_contains_header;
        tc "piece is independent" test_piece_is_independent;
        tc "cache rule materialisation" test_cache_rule;
        tc "no match -> no piece" test_no_match;
        tc "all pieces of a rule" test_pieces_of_rule;
        tc "dependent-set cost" test_dependent_set_cost;
        prop_piece_semantics;
        prop_piece_independent;
        prop_pieces_cover_effective_region;
      ] );
  ]

open Test_util

let s2 = Schema.tiny2

let sample_rules =
  [
    Rule.make ~id:1 ~priority:5
      (Pred.of_strings s2 [ ("f1", "0xxxxxxx") ])
      (Action.Forward 2);
    Rule.make ~id:2 ~priority:0 (Pred.any s2) Action.Drop;
  ]

let p_lo = Pred.of_strings s2 [ ("f1", "0xxxxxxx") ]
let p_hi = Pred.of_strings s2 [ ("f1", "1xxxxxxx") ]

let sample_migration =
  {
    Journal.mid = 4;
    src_pid = 2;
    src_region = Pred.any s2;
    src_replicas = [ 1; 3 ];
    lo_pid = 8;
    lo_region = p_lo;
    lo_replicas = [ 1; 3 ];
    hi_pid = 9;
    hi_region = p_hi;
    hi_replicas = [ 4; 1 ];
  }

(* one of each entry kind, including empty-list edge cases *)
let every_kind =
  [
    Journal.Build { policy = sample_rules; authority_ids = [ 1; 3; 4 ] };
    Journal.Policy_update { rules = sample_rules; strict = true };
    Journal.Policy_update { rules = []; strict = false };
    Journal.Fail_authority 3;
    Journal.Restore_authority 3;
    Journal.Declared_dead 2;
    Journal.Recovered 2;
    Journal.Rebalance [ (0, 1.5); (1, 0.25); (7, 0.) ];
    Journal.Rebalance [];
    Journal.Epoch { epoch = 2; leader = 1 };
    Journal.Migration_begin sample_migration;
    Journal.Migration_begin { sample_migration with mid = 5; src_replicas = [] };
    Journal.Migration_flip 4;
    Journal.Migration_commit 4;
    Journal.Migration_abort 5;
    Journal.Partition_layout
      { regions = [ (8, p_lo); (9, p_hi) ]; replicas = [ (8, [ 1; 3 ]); (9, [ 4 ]) ] };
    Journal.Partition_layout { regions = []; replicas = [] };
  ]

let filled () =
  let j = Journal.create () in
  List.iteri
    (fun i e ->
      check Alcotest.int "seq allocated in order" i
        (Journal.append j ~at:(0.1 *. float_of_int i) e))
    every_kind;
  j

let test_roundtrip_every_kind () =
  let j = filled () in
  match Journal.decode s2 (Journal.encode j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok j' ->
      check Alcotest.bool "journals equal" true (Journal.equal j j');
      let entries = Journal.entries j' in
      check Alcotest.int "all entries survive" (List.length every_kind)
        (List.length entries);
      List.iter2
        (fun want (_, _, got) ->
          check Alcotest.bool
            (Format.asprintf "entry %a" Journal.pp_entry want)
            true
            (Journal.equal_entry want got))
        every_kind entries

let test_empty_roundtrip () =
  let j = Journal.create () in
  match Journal.decode s2 (Journal.encode j) with
  | Ok j' -> check Alcotest.int "empty" 0 (Journal.length j')
  | Error e -> Alcotest.failf "empty journal failed to decode: %s" e

let test_snapshot_compacts_and_replays () =
  let j = filled () in
  let base =
    [
      Journal.Build { policy = sample_rules; authority_ids = [ 1; 4 ] };
      Journal.Epoch { epoch = 3; leader = 0 };
    ]
  in
  Journal.snapshot j ~at:2. base;
  check Alcotest.int "tail cleared" 0 (Journal.tail_length j);
  check Alcotest.int "history compacted" 2 (Journal.length j);
  ignore (Journal.append j ~at:3. (Journal.Fail_authority 1));
  check Alcotest.int "tail grows past the snapshot" 1 (Journal.tail_length j);
  match Journal.decode s2 (Journal.encode j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok j' ->
      let seen = ref [] in
      Journal.replay j' (fun e -> seen := e :: !seen);
      (match List.rev !seen with
      | [ Journal.Build _; Journal.Epoch { epoch = 3; _ }; Journal.Fail_authority 1 ] -> ()
      | es ->
          Alcotest.failf "replay order wrong (%d entries: %s)" (List.length es)
            (String.concat "; "
               (List.map (Format.asprintf "%a" Journal.pp_entry) es)));
      (* seqs stay monotonic across the decode: new appends don't collide *)
      let s = Journal.append j' ~at:4. (Journal.Recovered 1) in
      check Alcotest.bool "next seq above every decoded seq" true
        (List.for_all (fun (q, _, _) -> q < s) (Journal.entries j))

(* random journals over every entry kind round-trip through the codec *)
let gen_entry =
  let open QCheck2.Gen in
  let preds = [| Pred.any s2; p_lo; p_hi |] in
  let small = int_range 0 9 in
  let ids = list_size (int_range 0 4) small in
  let migration =
    map3
      (fun mid (sp, lp, hp) (r1, r2) ->
        {
          Journal.mid;
          src_pid = sp;
          src_region = preds.(r1);
          src_replicas = [ sp; sp + 1 ];
          lo_pid = lp;
          lo_region = preds.(r2);
          lo_replicas = [ lp ];
          hi_pid = hp;
          hi_region = preds.(r1);
          hi_replicas = [ hp; hp + 2 ];
        })
      small
      (triple small small small)
      (pair (int_range 0 2) (int_range 0 2))
  in
  oneof
    [
      map (fun ids -> Journal.Build { policy = sample_rules; authority_ids = ids }) ids;
      map
        (fun strict ->
          Journal.Policy_update
            { rules = (if strict then sample_rules else []); strict })
        bool;
      map (fun i -> Journal.Fail_authority i) small;
      map (fun i -> Journal.Restore_authority i) small;
      map (fun i -> Journal.Declared_dead i) small;
      map (fun i -> Journal.Recovered i) small;
      map
        (fun loads ->
          Journal.Rebalance (List.map (fun (p, l) -> (p, float_of_int l)) loads))
        (list_size (int_range 0 4) (pair small small));
      map2 (fun epoch leader -> Journal.Epoch { epoch; leader }) small small;
      map (fun m -> Journal.Migration_begin m) migration;
      map (fun i -> Journal.Migration_flip i) small;
      map (fun i -> Journal.Migration_commit i) small;
      map (fun i -> Journal.Migration_abort i) small;
      map2
        (fun rs reps ->
          Journal.Partition_layout
            {
              regions = List.map (fun (p, r) -> (p, preds.(r))) rs;
              replicas = List.map (fun (p, s) -> (p, [ s; s + 1 ])) reps;
            })
        (list_size (int_range 0 3) (pair small (int_range 0 2)))
        (list_size (int_range 0 3) (pair small small));
    ]

let prop_random_journal_roundtrips =
  qt ~count:50 "random journals round-trip"
    QCheck2.Gen.(list_size (int_range 0 12) gen_entry)
    (fun entries ->
      let j = Journal.create () in
      List.iteri
        (fun i e -> ignore (Journal.append j ~at:(0.25 *. float_of_int i) e))
        entries;
      match Journal.decode s2 (Journal.encode j) with
      | Error _ -> false
      | Ok j' -> Journal.equal j j')

let test_any_corruption_detected () =
  let j = Journal.create () in
  ignore (Journal.append j ~at:0.5 (Journal.Epoch { epoch = 1; leader = 0 }));
  ignore
    (Journal.append j ~at:1.
       (Journal.Build { policy = sample_rules; authority_ids = [ 1 ] }));
  let b = Journal.encode j in
  for pos = 0 to Bytes.length b - 1 do
    let c = Bytes.copy b in
    Bytes.set_uint8 c pos (Bytes.get_uint8 c pos lxor 0x01);
    match Journal.decode s2 c with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bit flip at byte %d went undetected" pos
  done

(* the body-shape guard behind the checksum: a record whose count field
   disagrees with its body length must be rejected even when the checksum
   is recomputed to match — a buggy writer, not wire corruption *)
let test_rebalance_bad_count_rejected () =
  let j = Journal.create () in
  ignore (Journal.append j ~at:1. (Journal.Rebalance [ (0, 1.); (1, 2.) ]));
  let b = Journal.encode j in
  (* the header is 27 bytes; the body's first u32 (big-endian) is the
     load count — bump its low byte (byte 30) and re-checksum so only
     the body-length check can catch the lie *)
  Bytes.set_uint8 b 30 (Bytes.get_uint8 b 30 + 1);
  Bytes.set_int64_be b 19 (Message.fnv1a ~hole:(19, 8) b);
  match Journal.decode s2 b with
  | Error e ->
      check Alcotest.string "length check names the record" "bad rebalance length" e
  | Ok _ -> Alcotest.fail "inflated rebalance count decoded"

let test_truncation_detected () =
  let j = filled () in
  let b = Journal.encode j in
  for cut = 1 to 40 do
    let n = Bytes.length b - cut in
    if n > 0 then
      match Journal.decode s2 (Bytes.sub b 0 n) with
      | Error _ -> ()
      | Ok j' ->
          (* a clean cut at a record boundary is indistinguishable from a
             shorter journal; anything else must fail *)
          if Journal.length j' >= Journal.length j then
            Alcotest.failf "truncation by %d bytes went undetected" cut
  done

let suite =
  [
    ( "journal",
      [
        tc "every entry kind round-trips" test_roundtrip_every_kind;
        tc "empty journal round-trips" test_empty_roundtrip;
        tc "snapshot compacts; replay = base then tail" test_snapshot_compacts_and_replays;
        prop_random_journal_roundtrips;
        tc "any single-bit corruption detected" test_any_corruption_detected;
        tc "inflated rebalance count rejected" test_rebalance_bad_count_rejected;
        tc "truncation detected" test_truncation_detected;
      ] );
  ]

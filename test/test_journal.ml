open Test_util

let s2 = Schema.tiny2

let sample_rules =
  [
    Rule.make ~id:1 ~priority:5
      (Pred.of_strings s2 [ ("f1", "0xxxxxxx") ])
      (Action.Forward 2);
    Rule.make ~id:2 ~priority:0 (Pred.any s2) Action.Drop;
  ]

(* one of each entry kind, including empty-list edge cases *)
let every_kind =
  [
    Journal.Build { policy = sample_rules; authority_ids = [ 1; 3; 4 ] };
    Journal.Policy_update { rules = sample_rules; strict = true };
    Journal.Policy_update { rules = []; strict = false };
    Journal.Fail_authority 3;
    Journal.Restore_authority 3;
    Journal.Declared_dead 2;
    Journal.Recovered 2;
    Journal.Rebalance [ (0, 1.5); (1, 0.25); (7, 0.) ];
    Journal.Rebalance [];
    Journal.Epoch { epoch = 2; leader = 1 };
  ]

let filled () =
  let j = Journal.create () in
  List.iteri
    (fun i e ->
      check Alcotest.int "seq allocated in order" i
        (Journal.append j ~at:(0.1 *. float_of_int i) e))
    every_kind;
  j

let test_roundtrip_every_kind () =
  let j = filled () in
  match Journal.decode s2 (Journal.encode j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok j' ->
      check Alcotest.bool "journals equal" true (Journal.equal j j');
      let entries = Journal.entries j' in
      check Alcotest.int "all entries survive" (List.length every_kind)
        (List.length entries);
      List.iter2
        (fun want (_, _, got) ->
          check Alcotest.bool
            (Format.asprintf "entry %a" Journal.pp_entry want)
            true
            (Journal.equal_entry want got))
        every_kind entries

let test_empty_roundtrip () =
  let j = Journal.create () in
  match Journal.decode s2 (Journal.encode j) with
  | Ok j' -> check Alcotest.int "empty" 0 (Journal.length j')
  | Error e -> Alcotest.failf "empty journal failed to decode: %s" e

let test_snapshot_compacts_and_replays () =
  let j = filled () in
  let base =
    [
      Journal.Build { policy = sample_rules; authority_ids = [ 1; 4 ] };
      Journal.Epoch { epoch = 3; leader = 0 };
    ]
  in
  Journal.snapshot j ~at:2. base;
  check Alcotest.int "tail cleared" 0 (Journal.tail_length j);
  check Alcotest.int "history compacted" 2 (Journal.length j);
  ignore (Journal.append j ~at:3. (Journal.Fail_authority 1));
  check Alcotest.int "tail grows past the snapshot" 1 (Journal.tail_length j);
  match Journal.decode s2 (Journal.encode j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok j' ->
      let seen = ref [] in
      Journal.replay j' (fun e -> seen := e :: !seen);
      (match List.rev !seen with
      | [ Journal.Build _; Journal.Epoch { epoch = 3; _ }; Journal.Fail_authority 1 ] -> ()
      | es ->
          Alcotest.failf "replay order wrong (%d entries: %s)" (List.length es)
            (String.concat "; "
               (List.map (Format.asprintf "%a" Journal.pp_entry) es)));
      (* seqs stay monotonic across the decode: new appends don't collide *)
      let s = Journal.append j' ~at:4. (Journal.Recovered 1) in
      check Alcotest.bool "next seq above every decoded seq" true
        (List.for_all (fun (q, _, _) -> q < s) (Journal.entries j))

let test_any_corruption_detected () =
  let j = Journal.create () in
  ignore (Journal.append j ~at:0.5 (Journal.Epoch { epoch = 1; leader = 0 }));
  ignore
    (Journal.append j ~at:1.
       (Journal.Build { policy = sample_rules; authority_ids = [ 1 ] }));
  let b = Journal.encode j in
  for pos = 0 to Bytes.length b - 1 do
    let c = Bytes.copy b in
    Bytes.set_uint8 c pos (Bytes.get_uint8 c pos lxor 0x01);
    match Journal.decode s2 c with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bit flip at byte %d went undetected" pos
  done

let test_truncation_detected () =
  let j = filled () in
  let b = Journal.encode j in
  for cut = 1 to 40 do
    let n = Bytes.length b - cut in
    if n > 0 then
      match Journal.decode s2 (Bytes.sub b 0 n) with
      | Error _ -> ()
      | Ok j' ->
          (* a clean cut at a record boundary is indistinguishable from a
             shorter journal; anything else must fail *)
          if Journal.length j' >= Journal.length j then
            Alcotest.failf "truncation by %d bytes went undetected" cut
  done

let suite =
  [
    ( "journal",
      [
        tc "every entry kind round-trips" test_roundtrip_every_kind;
        tc "empty journal round-trips" test_empty_roundtrip;
        tc "snapshot compacts; replay = base then tail" test_snapshot_compacts_and_replays;
        tc "any single-bit corruption detected" test_any_corruption_detected;
        tc "truncation detected" test_truncation_detected;
      ] );
  ]

open Test_util

let test_summary_basics () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  check Alcotest.int "count" 5 s.Summary.count;
  check (Alcotest.float 1e-9) "mean" 3. s.Summary.mean;
  check (Alcotest.float 1e-9) "min" 1. s.Summary.min;
  check (Alcotest.float 1e-9) "max" 5. s.Summary.max;
  check (Alcotest.float 1e-9) "p50" 3. s.Summary.p50

let test_summary_single () =
  let s = Summary.of_list [ 7. ] in
  check (Alcotest.float 1e-9) "p99 of singleton" 7. s.Summary.p99;
  check (Alcotest.float 1e-9) "stddev" 0. s.Summary.stddev

let test_summary_empty () =
  try
    ignore (Summary.of_list []);
    Alcotest.fail "empty accepted"
  with Invalid_argument _ -> ()

let test_percentile_interpolation () =
  let sorted = [| 0.; 10. |] in
  check (Alcotest.float 1e-9) "midpoint" 5. (Summary.percentile sorted 0.5);
  check (Alcotest.float 1e-9) "q0" 0. (Summary.percentile sorted 0.);
  check (Alcotest.float 1e-9) "q1" 10. (Summary.percentile sorted 1.)

let test_cdf () =
  let c = Cdf.of_list [ 1.; 2.; 2.; 4. ] in
  check (Alcotest.float 1e-9) "at 0" 0. (Cdf.at c 0.);
  check (Alcotest.float 1e-9) "at 2" 0.75 (Cdf.at c 2.);
  check (Alcotest.float 1e-9) "at 100" 1.0 (Cdf.at c 100.);
  check (Alcotest.float 1e-9) "inverse 0.5" 2. (Cdf.inverse c 0.5);
  check (Alcotest.float 1e-9) "inverse 1.0" 4. (Cdf.inverse c 1.0);
  let series = Cdf.series ~points:4 c in
  check Alcotest.int "series length" 4 (List.length series);
  check (Alcotest.float 1e-9) "series ends at max" 4. (fst (List.nth series 3))

let prop_cdf_monotone =
  qt "cdf is monotone"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (samples, (a, b)) ->
      let c = Cdf.of_list samples in
      let lo = Float.min a b and hi = Float.max a b in
      Cdf.at c lo <= Cdf.at c hi)

let prop_summary_bounds =
  qt "percentiles ordered"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun samples ->
      let s = Summary.of_list samples in
      s.Summary.min <= s.Summary.p50
      && s.Summary.p50 <= s.Summary.p90
      && s.Summary.p90 <= s.Summary.p95
      && s.Summary.p95 <= s.Summary.p99
      && s.Summary.p99 <= s.Summary.max)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "3+ lines" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  check Alcotest.bool "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_formatting () =
  check Alcotest.string "pct" "87.3%" (Table.fmt_pct 0.873);
  check Alcotest.string "si M" "1.50M" (Table.fmt_si 1.5e6);
  check Alcotest.string "si k" "20.0k" (Table.fmt_si 20_000.);
  check Alcotest.string "si plain" "350" (Table.fmt_si 350.)

(* --- percentile/quantile edge cases --- *)

let test_percentile_empty () =
  try
    ignore (Summary.percentile [||] 0.5);
    Alcotest.fail "empty array accepted"
  with Invalid_argument _ -> ()

let test_percentile_single () =
  (* a single element answers every quantile *)
  List.iter
    (fun q ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "q=%g of singleton" q)
        42. (Summary.percentile [| 42. |] q))
    [ 0.; 0.25; 0.5; 0.75; 0.99; 1. ]

let test_percentile_extreme_q () =
  let sorted = [| 1.; 2.; 3. |] in
  (* q outside [0..1] clamps to the extremes rather than indexing out *)
  check (Alcotest.float 1e-9) "q=-1 clamps to min" 1. (Summary.percentile sorted (-1.));
  check (Alcotest.float 1e-9) "q=0 is min" 1. (Summary.percentile sorted 0.);
  check (Alcotest.float 1e-9) "q=1 is max" 3. (Summary.percentile sorted 1.);
  check (Alcotest.float 1e-9) "q=2 clamps to max" 3. (Summary.percentile sorted 2.)

let test_percentile_duplicates () =
  (* duplicate-heavy arrays: interpolation between equal values stays put *)
  let sorted = [| 5.; 5.; 5.; 5.; 5.; 5.; 5.; 9. |] in
  check (Alcotest.float 1e-9) "p50 in the plateau" 5. (Summary.percentile sorted 0.5);
  check (Alcotest.float 1e-9) "p75 still in plateau" 5. (Summary.percentile sorted 0.75);
  check Alcotest.bool "p99 leaves the plateau" true (Summary.percentile sorted 0.99 > 5.);
  let all_same = Array.make 100 3.14 in
  let s = Summary.of_array all_same in
  check (Alcotest.float 1e-9) "constant array: p50=p99" s.Summary.p50 s.Summary.p99;
  check (Alcotest.float 1e-9) "constant array: stddev 0" 0. s.Summary.stddev

let prop_percentile_monotone_in_q =
  qt "percentile monotone in q"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 40) (float_bound_inclusive 100.))
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (samples, a, b) ->
      let sorted = Array.of_list samples in
      Array.sort Float.compare sorted;
      let lo = Float.min a b and hi = Float.max a b in
      Summary.percentile sorted lo <= Summary.percentile sorted hi +. 1e-9)

let suite =
  [
    ( "stats",
      [
        tc "summary basics" test_summary_basics;
        tc "summary singleton" test_summary_single;
        tc "summary empty rejected" test_summary_empty;
        tc "percentile interpolation" test_percentile_interpolation;
        tc "percentile empty rejected" test_percentile_empty;
        tc "percentile singleton all q" test_percentile_single;
        tc "percentile q clamping" test_percentile_extreme_q;
        tc "percentile duplicate plateaus" test_percentile_duplicates;
        prop_percentile_monotone_in_q;
        tc "cdf" test_cdf;
        tc "table rendering" test_table_render;
        tc "number formatting" test_formatting;
        prop_cdf_monotone;
        prop_summary_bounds;
      ] );
  ]

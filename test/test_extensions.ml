(* Tests for the extension layers: trace serialisation, the indexed
   classifier, microflow cache mode, and flow-removed notifications. *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

(* --- trace --- *)

let sample_flows =
  List.init 25 (fun i ->
      {
        Traffic.flow_id = i;
        header = h (i mod 256) ((i * 7) mod 256);
        ingress = i mod 3;
        start = float_of_int i *. 0.125;
        packets = 1 + (i mod 5);
        interval = 0.001;
      })

let flows_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Traffic.flow) (y : Traffic.flow) ->
         x.flow_id = y.flow_id && x.ingress = y.ingress
         && Float.abs (x.start -. y.start) < 1e-9
         && x.packets = y.packets
         && Float.abs (x.interval -. y.interval) < 1e-9
         && Header.equal x.header y.header)
       a b

let test_trace_roundtrip () =
  let text = Trace.to_string s2 sample_flows in
  match Trace.of_string s2 text with
  | Ok flows -> check Alcotest.bool "roundtrip" true (flows_equal sample_flows flows)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "difane" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path s2 sample_flows;
      match Trace.load path s2 with
      | Ok flows -> check Alcotest.bool "file roundtrip" true (flows_equal sample_flows flows)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_trace_schema_mismatch () =
  let text = Trace.to_string s2 sample_flows in
  match Trace.of_string Schema.ip_pair text with
  | Ok _ -> Alcotest.fail "schema mismatch accepted"
  | Error e -> check Alcotest.bool "mentions schema" true (String.length e > 0)

let test_trace_garbage () =
  (match Trace.of_string s2 "not a trace" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  let text = Trace.to_string s2 sample_flows ^ "1 2 oops\n" in
  match Trace.of_string s2 text with
  | Ok _ -> Alcotest.fail "truncated record accepted"
  | Error e -> check Alcotest.bool "line number in error" true (String.length e > 0)

let test_trace_comments_blank () =
  let text = Trace.to_string s2 sample_flows ^ "\n# trailing comment\n\n" in
  match Trace.of_string s2 text with
  | Ok flows -> check Alcotest.int "comments skipped" 25 (List.length flows)
  | Error e -> Alcotest.failf "parse failed: %s" e

(* --- indexed classifier --- *)

let test_indexed_basics () =
  let c =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "00000001") ], Action.Drop);
        (20, [ ("f1", "000000xx") ], Action.Forward 1);
        (10, [], Action.Forward 2);
      ]
  in
  let idx = Indexed.of_classifier c in
  check Alcotest.int "length" 3 (Indexed.length idx);
  check Alcotest.int "three mask groups" 3 (Indexed.groups idx);
  let get f = Option.map (fun (r : Rule.t) -> r.id) (f (h 1 0)) in
  check (Alcotest.option Alcotest.int) "same winner" (get (Classifier.first_match c))
    (get (Indexed.first_match idx))

let test_indexed_tie_break () =
  let c =
    Classifier.of_specs s2
      [ (5, [ ("f1", "0000000x") ], Action.Forward 1); (5, [ ("f1", "0000000x") ], Action.Forward 2) ]
  in
  let idx = Indexed.of_classifier c in
  match Indexed.first_match idx (h 0 0) with
  | Some r -> check Alcotest.int "lower id wins" 0 r.Rule.id
  | None -> Alcotest.fail "no match"

let test_indexed_adaptive () =
  (* prefix tables share mask vectors (one per prefix length): tuple
     search applies; random-mask ACLs degenerate to the linear scan *)
  let prefixes =
    Policy_gen.prefix_table (Prng.create 3)
      { Policy_gen.default_prefixes with prefixes = 500 }
  in
  let pidx = Indexed.of_classifier prefixes in
  check Alcotest.bool "prefix table keeps tuple search" false (Indexed.degenerate pidx);
  check Alcotest.bool "one group per prefix length" true (Indexed.groups pidx <= 33);
  let acl = Policy_gen.acl (Prng.create 3) { Policy_gen.default_acl with rules = 200 } in
  let aidx = Indexed.of_classifier acl in
  check Alcotest.bool "acl falls back to scan" true (Indexed.degenerate aidx);
  (* semantics identical either way *)
  let h = (Traffic.headers_for (Prng.create 9) prefixes 1).(0) in
  check Alcotest.bool "same winner" true
    (Option.map (fun (r : Rule.t) -> r.id) (Indexed.first_match pidx h)
    = Option.map (fun (r : Rule.t) -> r.id) (Classifier.first_match prefixes h))

let prop_indexed_equals_linear =
  qt ~count:150 "indexed = linear first_match"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 15) (pair (int_bound 10) gen_pred_tiny2))
        gen_header_tiny2)
    (fun (specs, hdr) ->
      let rules =
        List.mapi (fun i (pr, pd) -> Rule.make ~id:i ~priority:pr pd Action.Drop) specs
      in
      let c = Classifier.create s2 rules in
      let idx = Indexed.of_classifier c in
      let a = Option.map (fun (r : Rule.t) -> r.id) (Classifier.first_match c hdr) in
      let b = Option.map (fun (r : Rule.t) -> r.id) (Indexed.first_match idx hdr) in
      a = b)

(* --- microflow cache mode --- *)

let policy =
  Classifier.of_specs s2
    [ (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2); (0, [], Action.Drop) ]

let test_microflow_mode_exact () =
  let config = { Deployment.default_config with cache_mode = `Microflow } in
  let d =
    Deployment.build ~config ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 1 ] ()
  in
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 2 9) in
  let r = Option.get o.Deployment.installed in
  check Alcotest.bool "covers its header" true (Rule.matches r (h 2 9));
  check Alcotest.bool "exact: no aggregation" false (Rule.matches r (h 2 10));
  (* a nearby header misses again under microflow caching... *)
  let o2 = Deployment.inject d ~now:0.1 ~ingress:0 (h 2 10) in
  check Alcotest.bool "sibling header misses" false o2.Deployment.cache_hit;
  (* ...but hits under spliced caching *)
  let d' =
    Deployment.build ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 1 ] ()
  in
  ignore (Deployment.inject d' ~now:0. ~ingress:0 (h 2 9));
  let o3 = Deployment.inject d' ~now:0.1 ~ingress:0 (h 2 10) in
  check Alcotest.bool "spliced aggregates" true o3.Deployment.cache_hit

(* --- flow-removed notifications --- *)

let test_flow_removed_codec () =
  let msg =
    Message.Flow_removed
      {
        Message.removed_rule = 2_000_007;
        cookie = 42;
        reason = Message.Hard_timeout;
        final_packets = 123L;
        final_bytes = 7872L;
        lifetime = 9.5;
      }
  in
  match Message.decode s2 (Message.encode ~xid:3 msg) with
  | Ok (3, _, msg') -> check Alcotest.bool "roundtrip" true (Message.equal msg msg')
  | Ok _ -> Alcotest.fail "xid corrupted"
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_flow_removed_unset_cookie () =
  let msg =
    Message.Flow_removed
      { Message.removed_rule = 1; cookie = -1; reason = Message.Evicted;
        final_packets = 0L; final_bytes = 0L; lifetime = 0. }
  in
  match Message.decode s2 (Message.encode ~xid:0 msg) with
  | Ok (_, _, Message.Flow_removed f) ->
      check Alcotest.int "cookie -1 survives" (-1) f.Message.cookie
  | _ -> Alcotest.fail "roundtrip failed"

let test_notifications_on_expiry () =
  let sw = Switch.create ~id:0 ~cache_capacity:4 in
  let r = Rule.make ~id:9 ~priority:1 (Pred.any s2) (Action.Forward 1) in
  ignore (Switch.install_cache_rule ~hard_timeout:1.0 ~origin_id:5 sw ~now:0. r);
  ignore (Switch.process sw ~now:0.5 (h 1 1));
  ignore (Switch.expire_cache sw ~now:2.0);
  match Switch.drain_notifications sw with
  | [ Message.Flow_removed f ] ->
      check Alcotest.int "rule id" 9 f.Message.removed_rule;
      check Alcotest.int "cookie carries origin" 5 f.Message.cookie;
      check Alcotest.bool "hard timeout reason" true (f.Message.reason = Message.Hard_timeout);
      check Alcotest.int64 "final packets" 1L f.Message.final_packets;
      check (Alcotest.list Alcotest.string) "drained" []
        (List.map (Format.asprintf "%a" Message.pp) (Switch.drain_notifications sw))
  | other -> Alcotest.failf "expected one notification, got %d" (List.length other)

let test_notifications_on_eviction () =
  let sw = Switch.create ~id:0 ~cache_capacity:1 in
  let mk id v =
    Rule.make ~id ~priority:1 (Pred.of_strings s2 [ ("f1", v) ]) Action.Drop
  in
  ignore (Switch.install_cache_rule ~origin_id:1 sw ~now:0. (mk 100 "00000001"));
  ignore (Switch.install_cache_rule ~origin_id:2 sw ~now:1. (mk 101 "00000010"));
  match Switch.drain_notifications sw with
  | [ Message.Flow_removed f ] ->
      check Alcotest.int "evicted rule" 100 f.Message.removed_rule;
      check Alcotest.bool "eviction reason" true (f.Message.reason = Message.Evicted)
  | other -> Alcotest.failf "expected one eviction, got %d" (List.length other)

let test_counters_survive_churn () =
  (* end-to-end: retired + live accounting through the control plane *)
  let d =
    Deployment.build
      ~config:{ Deployment.default_config with cache_hard_timeout = Some 0.5; k = 2 }
      ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 1 ] ()
  in
  let cp =
    Control_plane.create
      ~config:{ Control_plane.default_config with stats_interval = 0.2 }
      d
  in
  (* two packets before expiry, then expiry, then two more (new entry) *)
  ignore (Deployment.inject d ~now:0.00 ~ingress:0 (h 2 9));
  ignore (Deployment.inject d ~now:0.01 ~ingress:0 (h 2 9));
  let t = ref 0.0 in
  while !t < 2.0 do
    ignore (Deployment.expire_caches d ~now:!t);
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.05
  done;
  ignore (Deployment.inject d ~now:2.0 ~ingress:0 (h 2 9));
  ignore (Deployment.inject d ~now:2.01 ~ingress:0 (h 2 9));
  let t = ref 2.0 in
  while !t < 3.0 do
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.05
  done;
  (* origin rule 0 decided all four packets; only cache hits are counted
     (the two misses were served by the authority bank) *)
  match List.assoc_opt 0 (Control_plane.rule_counters cp) with
  | Some n -> check Alcotest.int64 "cache-hit packets across churn" 2L n
  | None -> Alcotest.fail "no counter for origin rule 0"

let suite =
  [
    ( "trace",
      [
        tc "string roundtrip" test_trace_roundtrip;
        tc "file roundtrip" test_trace_file_roundtrip;
        tc "schema mismatch rejected" test_trace_schema_mismatch;
        tc "garbage rejected" test_trace_garbage;
        tc "comments and blanks skipped" test_trace_comments_blank;
      ] );
    ( "indexed",
      [
        tc "basics" test_indexed_basics;
        tc "tie break" test_indexed_tie_break;
        tc "adaptive fallback" test_indexed_adaptive;
        prop_indexed_equals_linear;
      ] );
    ( "cache modes",
      [ tc "microflow vs spliced aggregation" test_microflow_mode_exact ] );
    ( "flow removed",
      [
        tc "codec roundtrip" test_flow_removed_codec;
        tc "unset cookie" test_flow_removed_unset_cookie;
        tc "notification on expiry" test_notifications_on_expiry;
        tc "notification on eviction" test_notifications_on_eviction;
        tc "counters survive churn" test_counters_survive_churn;
      ] );
  ]

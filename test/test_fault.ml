open Test_util

let s2 = Schema.tiny2

let lossy = Fault.lossy_link ~jitter:1e-3 0.2

let fates inj n = List.init n (fun _ -> Fault.fate inj)

(* --- the fault plan itself --- *)

let test_injector_deterministic () =
  let p = Fault.plan ~seed:7 ~link:lossy () in
  let a = fates (Fault.injector p ~channel:0) 500 in
  let b = fates (Fault.injector p ~channel:0) 500 in
  check Alcotest.bool "same seed+channel, same stream" true (a = b);
  let c = fates (Fault.injector p ~channel:1) 500 in
  check Alcotest.bool "different channel, different stream" true (a <> c);
  let p9 = Fault.plan ~seed:9 ~link:lossy () in
  let d = fates (Fault.injector p9 ~channel:0) 500 in
  check Alcotest.bool "different seed, different stream" true (a <> d)

let test_fate_distribution () =
  let p = Fault.plan ~seed:3 ~link:lossy () in
  let inj = Fault.injector p ~channel:2 in
  let n = 5000 in
  let lost = ref 0 and dups = ref 0 and corrupt = ref 0 in
  List.iter
    (function
      | Fault.Lost -> incr lost
      | Fault.Deliver ds ->
          if List.length ds = 2 then incr dups;
          if List.exists (fun (d : Fault.delivery) -> d.corrupt <> None) ds then
            incr corrupt)
    (fates inj n);
  (* drop = 0.2, duplicate/corrupt default to drop/4 = 0.05; allow wide
     tolerance, this is a sanity check not a statistics test *)
  check Alcotest.bool "drop rate ~20%" true (abs (!lost - 1000) < 300);
  check Alcotest.bool "duplicates happen" true (!dups > 100);
  check Alcotest.bool "corruption happens" true (!corrupt > 100)

let test_link_validation () =
  (match Fault.lossy_link 1.5 with
  | _ -> Alcotest.fail "probability > 1 accepted"
  | exception Invalid_argument _ -> ());
  match Fault.lossy_link ~corrupt:(-0.1) 0.1 with
  | _ -> Alcotest.fail "negative probability accepted"
  | exception Invalid_argument _ -> ()

let test_events_sorted () =
  let p =
    Fault.plan
      ~events:
        [
          Fault.Restart { switch = 0; at = 5.0 };
          Fault.Crash { switch = 0; at = 1.0 };
          Fault.Link_down { switch = 1; at = 3.0 };
        ]
      ()
  in
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "events time-ordered" [ 1.0; 3.0; 5.0 ]
    (List.map Fault.event_time p.Fault.events)

(* --- frame integrity --- *)

let test_corrupt_frame_detected () =
  let bytes = Message.encode ~xid:1 (Message.Echo_request 5) in
  (match Message.decode s2 bytes with
  | Ok (1, _, Message.Echo_request 5) -> ()
  | _ -> Alcotest.fail "clean frame failed to decode");
  (* flip one body byte: the checksum must catch it *)
  let flipped = Bytes.copy bytes in
  Bytes.set_uint8 flipped 16 (Bytes.get_uint8 flipped 16 lxor 0x10);
  (match Message.decode s2 flipped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "body corruption went undetected");
  (* flip a checksum byte itself *)
  let flipped = Bytes.copy bytes in
  Bytes.set_uint8 flipped 9 (Bytes.get_uint8 flipped 9 lxor 0x01);
  match Message.decode s2 flipped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checksum corruption went undetected"

(* --- lossy channel --- *)

let test_lossy_channel_counters () =
  let p = Fault.plan ~seed:5 ~link:(Fault.lossy_link 0.3) () in
  let ch = Channel.create ~fault:(Fault.injector p ~channel:0) s2 ~latency:0.01 in
  let n = 400 in
  for i = 1 to n do
    Channel.send ch ~now:0. ~xid:i Message.Hello
  done;
  let got = Channel.poll ch ~now:10. in
  let st = Channel.stats ch in
  check Alcotest.bool "frames dropped" true (st.Channel.dropped > 0);
  check Alcotest.bool "frames duplicated" true (st.Channel.duplicated > 0);
  (* every corrupted copy is caught at decode and skipped, never raised *)
  check Alcotest.int "corruption caught at decode" st.Channel.corrupted
    st.Channel.decode_errors;
  check Alcotest.int "delivery accounting closes"
    (n - st.Channel.dropped + st.Channel.duplicated - st.Channel.decode_errors)
    (List.length got)

let test_undecodable_frame_dropped_not_raised () =
  (* a frame of garbage must be counted, not crash the poll loop *)
  let p = Fault.plan ~seed:1 ~link:(Fault.lossy_link ~corrupt:1.0 0.0) () in
  let ch = Channel.create ~fault:(Fault.injector p ~channel:0) s2 ~latency:0.01 in
  Channel.send ch ~now:0. ~xid:1 (Message.Echo_request 2);
  let got = Channel.poll ch ~now:1. in
  check Alcotest.int "corrupt frame skipped" 0 (List.length got);
  check Alcotest.int "decode error counted" 1 (Channel.stats ch).Channel.decode_errors

let test_lossless_channel_untouched () =
  (* no injector: behaviour identical to the reliable channel *)
  let ch = Channel.create s2 ~latency:0.01 in
  for i = 1 to 50 do
    Channel.send ch ~now:0. ~xid:i Message.Hello
  done;
  check Alcotest.int "all delivered" 50 (List.length (Channel.poll ch ~now:1.));
  let st = Channel.stats ch in
  check Alcotest.int "nothing dropped" 0 st.Channel.dropped;
  check Alcotest.int "nothing corrupted" 0 st.Channel.corrupted

let test_channel_replay_identical () =
  let run () =
    let p = Fault.plan ~seed:13 ~link:lossy () in
    let ch = Channel.create ~fault:(Fault.injector p ~channel:4) s2 ~latency:0.01 in
    for i = 1 to 200 do
      Channel.send ch ~now:(float_of_int i *. 0.001) ~xid:i (Message.Echo_request i)
    done;
    (List.map (fun (x, _, _) -> x) (Channel.poll ch ~now:5.), Channel.stats ch)
  in
  let seq1, st1 = run () in
  let seq2, st2 = run () in
  check (Alcotest.list Alcotest.int) "same xid sequence" seq1 seq2;
  check Alcotest.int "same drop count" st1.Channel.dropped st2.Channel.dropped;
  check Alcotest.int "same corruption count" st1.Channel.corrupted st2.Channel.corrupted

let suite =
  [
    ( "fault plan",
      [
        tc "deterministic per (seed, channel)" test_injector_deterministic;
        tc "failure modes all exercised" test_fate_distribution;
        tc "probability validation" test_link_validation;
        tc "events sorted by time" test_events_sorted;
      ] );
    ( "lossy channel",
      [
        tc "corruption detected by checksum" test_corrupt_frame_detected;
        tc "loss counters close the accounting" test_lossy_channel_counters;
        tc "undecodable frames dropped, not raised" test_undecodable_frame_dropped_not_raised;
        tc "no injector, no interference" test_lossless_channel_untouched;
        tc "same seed replays identically" test_channel_replay_identical;
      ] );
  ]

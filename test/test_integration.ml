(* End-to-end scenario test: one campus deployment living through its
   whole operational life — traffic, statistics, a policy update, an
   authority failure, and a traffic-driven rebalance — asserting the
   global invariants at every stage. *)

open Test_util

let seed = 1234

let assert_faithful d policy ~probes =
  List.iter
    (fun (ingress, h) ->
      let expected = Option.value ~default:Action.Drop (Classifier.action policy h) in
      let got = (Deployment.inject d ~now:1e6 ~ingress h).Deployment.action in
      if not (Action.equal expected got) then
        Alcotest.failf "divergence at ingress %d: expected %s got %s" ingress
          (Action.to_string expected) (Action.to_string got))
    probes

let test_lifecycle () =
  let rng = Prng.create seed in
  let policy =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with rules = 300; chains = 20; chain_depth = 5 }
  in
  let topo_rng = Prng.split rng in
  let topology = Topology.campus ~rand:(fun () -> Prng.float topo_rng) ~edge_switches:8 () in
  let edges = List.init 8 (fun e -> 2 + 2 + e) in
  let config =
    {
      Deployment.default_config with
      k = 8;
      replication = 2;
      cache_capacity = 64;
      cache_idle_timeout = None;
      cache_hard_timeout = Some 5.0;
      balance = `Volume;
    }
  in
  let d = ref (Deployment.build ~config ~policy ~topology ~authority_ids:[ 2; 3 ] ()) in
  let probe_rng = Prng.split rng in
  let headers = Traffic.headers_for (Prng.split rng) policy 300 in
  let probes =
    List.init 400 (fun i ->
        (List.nth edges (Prng.int probe_rng 8), headers.(i mod Array.length headers)))
  in

  (* Phase 1: fresh deployment enforces the policy from every edge. *)
  assert_faithful !d policy ~probes;

  (* Phase 2: run traffic through the DES; throughput and counters sane. *)
  let profile =
    {
      Traffic.default with
      flows = 5_000;
      rate = 10_000.;
      alpha = 1.0;
      distinct_headers = 300;
      packets_per_flow_mean = 3.0;
      ingresses = edges;
    }
  in
  let flows = Traffic.generate (Prng.split rng) policy profile in
  let r = Flowsim.run_difane !d flows in
  check Alcotest.int "all flows complete" 5000 r.Flowsim.completed_flows;
  check Alcotest.bool "caches warmed" true (r.Flowsim.cache_hit_packets > 0);
  let loads = Deployment.measured_partition_loads !d in
  let measured = List.fold_left (fun acc (_, l) -> acc +. l) 0. loads in
  check Alcotest.bool "misses measured per partition" true (measured > 0.);

  (* Phase 3: traffic-driven rebalance preserves semantics. *)
  d := Deployment.rebalance !d ~loads;
  assert_faithful !d policy ~probes;

  (* Phase 4: policy update (strict) switches semantics atomically. *)
  let policy2 =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with rules = 300; chains = 20; chain_depth = 5 }
  in
  d := Deployment.update_policy !d ~now:10. policy2;
  assert_faithful !d policy2 ~probes;

  (* Phase 5: an authority dies; hot backups keep the system faithful. *)
  let victim = List.hd (Deployment.authority_ids !d) in
  d := Deployment.fail_authority !d victim;
  check Alcotest.int "promotion needed no serving-path installs" 0
    (Deployment.last_new_primary_installs !d);
  assert_faithful !d policy2 ~probes;

  (* Phase 6: global counter conservation across the whole life. *)
  Array.iter
    (fun sw ->
      let c = Switch.stats sw in
      if Int64.compare c.Switch.unmatched 0L > 0 then
        Alcotest.failf "switch %d saw unmatched packets" (Switch.id sw))
    (Deployment.switches !d)

let test_lifecycle_with_control_plane () =
  (* Same story, but the failure is detected by the control plane rather
     than declared by the test. *)
  let rng = Prng.create (seed + 1) in
  let policy =
    Policy_gen.acl (Prng.split rng) { Policy_gen.default_acl with rules = 120 }
  in
  let topology = Topology.full_mesh 6 () in
  let config = { Deployment.default_config with k = 6; replication = 2 } in
  let d = Deployment.build ~config ~policy ~topology ~authority_ids:[ 1; 2; 3 ] () in
  let cp = Control_plane.create d in
  (* warm traffic *)
  let headers = Traffic.headers_for (Prng.split rng) policy 100 in
  Array.iter (fun h -> ignore (Deployment.inject d ~now:0. ~ingress:0 h)) headers;
  (* kill an authority device; drive the control plane until detection *)
  Control_plane.kill_switch cp 2;
  let t = ref 0. in
  while !t < 15. do
    Control_plane.tick cp ~now:!t;
    t := !t +. 0.25
  done;
  check (Alcotest.list Alcotest.int) "death detected" [ 2 ]
    (Control_plane.failed_switches cp);
  let d' = Control_plane.deployment cp in
  check Alcotest.bool "authority removed" true
    (not (List.mem 2 (Deployment.authority_ids d')));
  (* misses keep being served correctly after automatic failover *)
  Array.iter
    (fun h ->
      let expected = Option.value ~default:Action.Drop (Classifier.action policy h) in
      let got = (Deployment.inject d' ~now:20. ~ingress:4 h).Deployment.action in
      if not (Action.equal expected got) then Alcotest.fail "post-detection divergence")
    headers

(* Chaos property: a random interleaving of operational events must never
   produce a packet decision that disagrees with the current policy. *)

type chaos_op = Traffic_burst | Update_policy | Kill_authority | Rebalance | Expire

let gen_chaos =
  QCheck2.Gen.(
    list_size (int_range 3 12)
      (oneofl [ Traffic_burst; Update_policy; Kill_authority; Rebalance; Expire ]))

let prop_chaos =
  qt ~count:15 "random operational chaos never breaks semantics" gen_chaos (fun ops ->
      let rng = Prng.create 77 in
      let mk_policy () =
        Policy_gen.acl (Prng.split rng)
          { Policy_gen.default_acl with rules = 60; chains = 8; chain_depth = 3 }
      in
      let policy = ref (mk_policy ()) in
      let d =
        ref
          (Deployment.build
             ~config:
               { Deployment.default_config with
                 k = 4; replication = 2; cache_capacity = 32;
                 cache_hard_timeout = Some 1.0 }
             ~policy:!policy ~topology:(Topology.full_mesh 5 ())
             ~authority_ids:[ 1; 2; 3 ] ())
      in
      let now = ref 0. in
      let headers = Traffic.headers_for (Prng.split rng) !policy 60 in
      let faithful () =
        Array.for_all
          (fun h ->
            let expected =
              Option.value ~default:Action.Drop (Classifier.action !policy h)
            in
            Action.equal (Deployment.inject !d ~now:!now ~ingress:0 h).Deployment.action
              expected)
          headers
      in
      List.for_all
        (fun op ->
          now := !now +. 0.5;
          (match op with
          | Traffic_burst ->
              for i = 0 to 29 do
                ignore (Deployment.inject !d ~now:!now ~ingress:(i mod 5) headers.(i mod 60))
              done
          | Update_policy ->
              policy := mk_policy ();
              d := Deployment.update_policy !d ~now:!now !policy
          | Kill_authority ->
              let auths = Deployment.authority_ids !d in
              if List.length auths > 1 then d := Deployment.fail_authority !d (List.hd auths)
          | Rebalance ->
              d := Deployment.rebalance !d ~loads:(Deployment.measured_partition_loads !d)
          | Expire -> ignore (Deployment.expire_caches !d ~now:!now));
          faithful ())
        ops)

let suite =
  [
    ( "integration",
      [
        tc "deployment lifecycle" test_lifecycle;
        tc "lifecycle with live failure detection" test_lifecycle_with_control_plane;
        prop_chaos;
      ] );
  ]

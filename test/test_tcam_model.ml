(* Model-based testing of the TCAM: random operation sequences executed
   against both the real table and a deliberately naive reference model;
   every observable must agree at every step. *)

open Test_util

let s2 = Schema.tiny2

(* The reference: a plain list of entries with the same semantics,
   written for obviousness rather than speed. *)
module Model = struct
  type entry = {
    rule : Rule.t;
    installed_at : float;
    mutable last_hit : float;
    mutable packets : int64;
    idle : float option;
    hard : float option;
  }

  type t = { cap : int; mutable entries : entry list }

  let create cap = { cap; entries = [] }

  let sorted t =
    List.stable_sort (fun a b -> Rule.compare_priority a.rule b.rule) t.entries

  let insert t ~now ?idle ?hard rule =
    let existed = List.exists (fun e -> e.rule.Rule.id = rule.Rule.id) t.entries in
    if existed then
      t.entries <- List.filter (fun e -> e.rule.Rule.id <> rule.Rule.id) t.entries;
    if existed || List.length t.entries < t.cap then begin
      t.entries <-
        { rule; installed_at = now; last_hit = now; packets = 0L; idle; hard } :: t.entries;
      true
    end
    else false

  let lookup t ~now h =
    match List.find_opt (fun e -> Rule.matches e.rule h) (sorted t) with
    | Some e ->
        e.last_hit <- now;
        e.packets <- Int64.add e.packets 1L;
        Some e.rule.Rule.id
    | None -> None

  let expire t ~now =
    let dead e =
      (match e.idle with Some d -> now -. e.last_hit >= d | None -> false)
      || match e.hard with Some d -> now -. e.installed_at >= d | None -> false
    in
    let gone = List.filter dead t.entries in
    t.entries <- List.filter (fun e -> not (dead e)) t.entries;
    List.map (fun e -> e.rule.Rule.id) gone |> List.sort Int.compare

  let remove t id =
    let before = List.length t.entries in
    t.entries <- List.filter (fun e -> e.rule.Rule.id <> id) t.entries;
    List.length t.entries < before

  let occupancy t = List.length t.entries
end

type op =
  | Insert of int * int * string * bool * bool (* id, priority, f1 bits, idle?, hard? *)
  | Lookup of int
  | Expire
  | Remove of int
  | Advance of float

let gen_op =
  let open QCheck2.Gen in
  let bits = string_size ~gen:(oneofl [ '0'; '1'; 'x' ]) (return 8) in
  oneof
    [
      (let* id = int_bound 15 in
       let* pr = int_bound 7 in
       let* b = bits in
       let* idle = bool in
       let* hard = bool in
       return (Insert (id, pr, b, idle, hard)));
      (int_bound 255 >|= fun v -> Lookup v);
      return Expire;
      (int_bound 15 >|= fun id -> Remove id);
      (float_bound_inclusive 3. >|= fun dt -> Advance dt);
    ]

let run_ops ops =
  let real = Tcam.create ~capacity:6 in
  let model = Model.create 6 in
  let clock = ref 0. in
  List.for_all
    (fun op ->
      match op with
      | Advance dt ->
          clock := !clock +. dt;
          true
      | Insert (id, priority, b, idle, hard) ->
          let rule =
            Rule.make ~id ~priority
              (Pred.of_strings s2 [ ("f1", b) ])
              Action.Drop
          in
          let idle = if idle then Some 1.5 else None in
          let hard = if hard then Some 4.0 else None in
          let real_ok =
            match Tcam.insert ?idle_timeout:idle ?hard_timeout:hard real ~now:!clock rule with
            | `Ok | `Replaced _ -> true
            | `Full -> false
          in
          let model_ok = Model.insert model ~now:!clock ?idle ?hard rule in
          real_ok = model_ok && Tcam.occupancy real = Model.occupancy model
      | Lookup v ->
          let h = Header.make s2 [| Int64.of_int v; 0L |] in
          let a = Option.map (fun (r : Rule.t) -> r.id) (Tcam.lookup real ~now:!clock h) in
          let b = Model.lookup model ~now:!clock h in
          a = b
      | Expire ->
          let a =
            Tcam.expire real ~now:!clock
            |> List.map (fun (r : Rule.t) -> r.id)
            |> List.sort Int.compare
          in
          let b = Model.expire model ~now:!clock in
          a = b && Tcam.occupancy real = Model.occupancy model
      | Remove id -> Tcam.remove real id = Model.remove model id)
    ops

let prop_model_agreement =
  qt ~count:300 "TCAM agrees with the naive reference on random op sequences"
    QCheck2.Gen.(list_size (int_range 1 60) gen_op)
    run_ops

let suite = [ ("tcam model", [ prop_model_agreement ]) ]

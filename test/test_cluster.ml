open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (5, [ ("f2", "1xxxxxxx") ], Action.Forward 1);
      (0, [], Action.Drop);
    ]

(* same shape, different forwarding decisions — an observable update *)
let policy' =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Forward 2);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 4);
      (5, [ ("f2", "1xxxxxxx") ], Action.Drop);
      (0, [], Action.Drop);
    ]

let probes =
  let rng = Prng.create 7 in
  List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256))

let mk ?(snapshot_every = 64) ?(events = []) () =
  let faults = Fault.plan ~seed:11 ~controllers:3 ~events () in
  let config =
    {
      Cluster.default_config with
      snapshot_every;
      cp =
        {
          Control_plane.default_config with
          echo_interval = 0.2;
          retx_timeout = 0.05;
          retx_limit = 8;
        };
    }
  in
  Cluster.create ~config ~faults
    ~dconfig:{ Deployment.default_config with k = 4; replication = 2 }
    ~policy ~topology:(Topology.line 5 ()) ~authority_ids:[ 1; 3; 4 ] ()

(* tick to [until], running [at]-stamped actions as their time passes *)
let drive ?(actions = []) cl ~until =
  Cluster.push_deployment cl ~now:0.;
  let step = 0.02 in
  let pending = ref (List.sort (fun (a, _) (b, _) -> Float.compare a b) actions) in
  let t = ref step in
  while !t <= until do
    let now = !t in
    Cluster.tick cl ~now;
    (match !pending with
    | (at, f) :: rest when at <= now ->
        f now;
        pending := rest
    | _ -> ());
    t := !t +. step
  done

let check_invariants cl =
  check Alcotest.int "no duplicate installs" 0 (Cluster.duplicate_installs cl);
  check Alcotest.int "no stale-epoch frames accepted" 0 (Cluster.stale_accepted cl);
  check Alcotest.int "nothing pending" 0 (Cluster.pending_requests cl);
  check Alcotest.bool "deployment = policy" true
    (Deployment.semantically_equal (Cluster.deployment cl) probes)

let test_steady_state_no_takeover () =
  let cl = mk () in
  drive cl ~until:3.;
  check Alcotest.int "no takeover" 0 (Cluster.takeovers cl);
  check Alcotest.int "leader unchanged" 0 (Cluster.leader cl);
  check Alcotest.int "epoch unchanged" 1 (Cluster.epoch cl);
  check_invariants cl

let test_leader_crash_takeover () =
  let cl =
    mk ~events:[ Fault.Controller_crash { controller = 0; at = 1.0 } ] ()
  in
  drive cl ~until:4.;
  check Alcotest.int "one takeover" 1 (Cluster.takeovers cl);
  check Alcotest.int "lowest live id leads" 1 (Cluster.leader cl);
  check Alcotest.int "epoch bumped" 2 (Cluster.epoch cl);
  check Alcotest.bool "crashed replica marked down" false (Cluster.controller_up cl 0);
  check Alcotest.bool "journal was replayed" true (Cluster.entries_replayed cl > 0);
  (match Cluster.takeover_latencies cl with
  | [ l ] -> check Alcotest.bool "takeover latency sane" true (l > 0. && l < 2.)
  | _ -> Alcotest.fail "expected exactly one takeover latency");
  check_invariants cl

let test_update_survives_leader_crash () =
  (* the update is journaled just before the leader dies mid-push; the
     standby's replay must land on the *new* policy *)
  let cl =
    mk ~events:[ Fault.Controller_crash { controller = 0; at = 1.06 } ] ()
  in
  drive cl ~until:4.
    ~actions:[ (1.0, fun now -> Cluster.update_policy cl ~now policy') ];
  check Alcotest.int "one takeover" 1 (Cluster.takeovers cl);
  let live = Deployment.policy (Cluster.deployment cl) in
  check Alcotest.bool "rebuilt deployment runs the updated policy" true
    (List.for_all
       (fun hd -> Classifier.action live hd = Classifier.action policy' hd)
       probes);
  check_invariants cl

let test_isolated_leader_is_fenced () =
  let cl = mk () in
  drive cl ~until:5.
    ~actions:[ (1.0, fun now -> Cluster.isolate cl ~now 0 true) ];
  check Alcotest.int "takeover happened" 1 (Cluster.takeovers cl);
  check Alcotest.int "standby 1 leads" 1 (Cluster.leader cl);
  (* the isolated leader kept mastering (echoes, retransmissions) until
     the switches' fencing deposed it *)
  check Alcotest.bool "stale master was fenced" true (Cluster.stale_rejected cl > 0);
  check_invariants cl

let test_second_takeover_replays_from_snapshot () =
  let cl =
    mk ~snapshot_every:3
      ~events:
        [
          Fault.Controller_crash { controller = 0; at = 1.0 };
          Fault.Controller_crash { controller = 1; at = 2.5 };
        ]
      ()
  in
  drive cl ~until:5.;
  check Alcotest.int "two takeovers" 2 (Cluster.takeovers cl);
  check Alcotest.int "last replica leads" 2 (Cluster.leader cl);
  check Alcotest.int "epoch 3" 3 (Cluster.epoch cl);
  check Alcotest.bool "journal was compacted" true (Cluster.snapshots cl >= 1);
  check_invariants cl

let test_seeded_run_replays_bit_identically () =
  let run () =
    let cl =
      mk ~events:[ Fault.Controller_crash { controller = 0; at = 1.0 } ] ()
    in
    drive cl ~until:4.
      ~actions:[ (0.8, fun now -> Cluster.update_policy cl ~now policy') ];
    (Bytes.to_string (Journal.encode (Cluster.journal cl)), Cluster.cluster_log cl)
  in
  let bytes1, log1 = run () in
  let bytes2, log2 = run () in
  check Alcotest.bool "journal bytes identical" true (String.equal bytes1 bytes2);
  check Alcotest.bool "event log identical" true (log1 = log2)

let suite =
  [
    ( "cluster",
      [
        tc "steady state: no election without cause" test_steady_state_no_takeover;
        tc "leader crash: standby rebuilds and takes over" test_leader_crash_takeover;
        tc "policy update survives a mid-push leader crash" test_update_survives_leader_crash;
        tc "isolated leader is epoch-fenced (split brain)" test_isolated_leader_is_fenced;
        tc "second takeover replays from the snapshot" test_second_takeover_replays_from_snapshot;
        tc "seeded run replays bit-identically" test_seeded_run_replays_bit_identically;
      ] );
  ]
